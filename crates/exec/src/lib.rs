//! # wsdf-exec — persistent partition-pinned BSP executor
//!
//! The simulation engine advances all BSP partitions once per cycle. Doing
//! that by spawning scoped threads every cycle (the original rayon-shim
//! approach) costs a thread create + join per worker per cycle — enough to
//! eat all parallelism at engine granularity. [`BspPool`] replaces it with
//! workers that live as long as the pool:
//!
//! * **Spawn once** — `BspPool::new(n)` starts `n - 1` background workers;
//!   the *calling* thread always executes slot 0, so a 1-worker pool is a
//!   plain inline loop with zero synchronization.
//! * **Reusable two-phase barrier** — each [`BspPool::broadcast`] is one
//!   release/collect round trip on a generation counter protected by a
//!   mutex + two condvars: phase one publishes the job and wakes the
//!   workers, phase two waits until every participating worker has checked
//!   in. No thread is created or destroyed.
//! * **Stable slots** — a broadcast over `k` slots always hands slot `i + 1`
//!   to background worker `i`. Callers that map work units (engine
//!   partitions) to slots with a fixed function therefore get *pinning for
//!   free*: the same OS thread touches the same partition state every
//!   cycle, keeping router/ring state hot in that core's cache.
//!
//! Worker-count policy lives here too: [`configured_threads`] honors
//! `WSDF_THREADS`, then `RAYON_NUM_THREADS`, then the machine's available
//! parallelism, and [`global_pool`] lazily builds the one process-wide pool
//! that sweeps, benches, and the engine all share — thread state is created
//! once per process, not once per run.
//!
//! ## Determinism contract
//!
//! `broadcast` never re-splits or re-orders work: it only hands out slot
//! indices. As long as the job function writes data that depends on the
//! slot-to-work mapping alone (the engine's partitions are disjoint and
//! exchange messages only between cycles), results are bit-identical for
//! *any* worker count, including 1.

#![deny(missing_docs)]

use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Resolve a thread-count override from an environment lookup function.
/// Split out from [`configured_threads`] so the precedence logic is
/// testable without mutating the process environment, and public so the
/// `wsdf` crate's `SessionConfig::resolve` can document the full
/// environment-precedence table in one place without re-implementing
/// this rule.
pub fn resolve_threads(get: impl Fn(&str) -> Option<String>) -> Option<usize> {
    for key in ["WSDF_THREADS", "RAYON_NUM_THREADS"] {
        if let Some(v) = get(key) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return Some(n);
                }
            }
        }
    }
    None
}

/// Worker count the process-wide pool is sized with: `WSDF_THREADS` if set,
/// else `RAYON_NUM_THREADS`, else the machine's available parallelism.
/// Cached on first use (environment changes after that are ignored).
pub fn configured_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        resolve_threads(|k| std::env::var(k).ok()).unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// The process-wide executor, sized by [`configured_threads`] and built on
/// first use. The engine, `wsdf::sweep`, and the criterion benches all run
/// on this one pool, so worker threads are created once per process and
/// reused across every simulation.
pub fn global_pool() -> &'static BspPool {
    static POOL: OnceLock<BspPool> = OnceLock::new();
    POOL.get_or_init(|| BspPool::new(configured_threads()))
}

/// Lifetime-erased pointer to the broadcast job. Only ever dereferenced
/// while the submitting `broadcast` call is blocked waiting for workers,
/// which keeps the pointee alive.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is Sync and outlives every dereference (see `Job`).
unsafe impl Send for Job {}

/// Barrier state shared between the submitter and the background workers.
struct State {
    /// Bumped once per broadcast; workers run when it moves past what they
    /// have already seen.
    epoch: u64,
    /// The job of the current epoch (`None` between broadcasts).
    job: Option<Job>,
    /// Number of background workers participating in the current epoch
    /// (workers with index ≥ `active` sit the round out).
    active: usize,
    /// Participating workers that have not finished the current epoch yet.
    remaining: usize,
    /// A worker's job panicked during the current epoch.
    panicked: bool,
    /// Pool is being dropped; workers exit.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new epoch.
    work: Condvar,
    /// The submitter waits here for `remaining == 0`.
    done: Condvar,
}

/// A persistent BSP worker pool; see the [module docs](self) for the
/// design. Dropping the pool shuts the workers down and joins them — no
/// threads outlive the pool (asserted by the torture test in
/// `tests/exec_pool.rs`).
pub struct BspPool {
    shared: Arc<Shared>,
    /// Serializes submitters: the barrier state supports one broadcast at
    /// a time, and the pool (notably [`global_pool`]) is shared across
    /// threads — e.g. the test harness runs `#[test]`s concurrently.
    submit: Mutex<()>,
    slots: usize,
    handles: Vec<JoinHandle<()>>,
}

std::thread_local! {
    /// True while this thread is executing a broadcast job (as submitter
    /// or worker). A nested broadcast from inside a job cannot use the
    /// barrier (the outer round holds it), so it degrades to an inline
    /// sequential loop — every slot still runs exactly once.
    static IN_BROADCAST: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// RAII flag setter for [`IN_BROADCAST`] (reset survives unwinding).
struct BroadcastFlag;

impl BroadcastFlag {
    fn set() -> Self {
        IN_BROADCAST.with(|f| f.set(true));
        BroadcastFlag
    }
}

impl Drop for BroadcastFlag {
    fn drop(&mut self) {
        IN_BROADCAST.with(|f| f.set(false));
    }
}

impl BspPool {
    /// Create a pool with `workers` total execution slots. Slot 0 is the
    /// calling thread of each [`broadcast`](Self::broadcast); `workers - 1`
    /// background threads are spawned for the rest. `workers == 0` is
    /// treated as 1.
    pub fn new(workers: usize) -> Self {
        let slots = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..slots - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wsdf-bsp-{}", i + 1))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("failed to spawn BSP worker")
            })
            .collect();
        BspPool {
            shared,
            submit: Mutex::new(()),
            slots,
            handles,
        }
    }

    /// Total execution slots (including the caller's slot 0).
    pub fn workers(&self) -> usize {
        self.slots
    }

    /// Run `f(slot)` once for each slot in `0..slots.min(self.workers())`,
    /// in parallel, and return only after every invocation has finished.
    ///
    /// Slot 0 runs on the calling thread; slot `i + 1` always runs on
    /// background worker `i`, so a fixed slot→work mapping yields stable
    /// thread pinning across broadcasts. With one effective slot this is an
    /// inline call with no synchronization at all.
    ///
    /// Panics in any slot's `f` are collected and re-raised here after all
    /// slots have completed (the pool itself stays usable).
    ///
    /// Concurrent broadcasts from different threads serialize on an
    /// internal submit lock; a *nested* broadcast from inside a job runs
    /// its slots inline on the calling thread (same results, no
    /// parallelism, no deadlock).
    pub fn broadcast<F: Fn(usize) + Sync>(&self, slots: usize, f: F) {
        let slots = slots.clamp(1, self.slots);
        if slots == 1 {
            f(0);
            return;
        }
        if IN_BROADCAST.with(|flag| flag.get()) {
            for s in 0..slots {
                f(s);
            }
            return;
        }
        // One broadcast at a time; ignore poisoning (a panicking broadcast
        // leaves the barrier state consistent — the guard below sees to
        // that — so the next submitter can proceed).
        let _submit = self.submit.lock().unwrap_or_else(|e| e.into_inner());
        let nbg = slots - 1;
        // SAFETY: lifetime erasure only — the pointer is dereferenced
        // exclusively between here and the completion wait below, while
        // `f` is alive on this stack frame.
        let obj: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(&f as &(dyn Fn(usize) + Sync + '_)) };
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert_eq!(st.remaining, 0, "overlapping broadcast");
            st.job = Some(Job(obj));
            st.active = nbg;
            st.remaining = nbg;
            st.panicked = false;
            st.epoch += 1;
            self.shared.work.notify_all();
        }
        // The guard waits for the workers even if f(0) panics below —
        // workers hold a pointer into this stack frame until they check in.
        let guard = CompletionGuard {
            shared: &self.shared,
        };
        {
            let _flag = BroadcastFlag::set();
            f(0);
        }
        drop(guard);
    }
}

impl Drop for BspPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Phase-two wait: blocks until every participating worker of the current
/// epoch has checked in, then re-raises any worker panic.
struct CompletionGuard<'a> {
    shared: &'a Shared,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        let panicked = std::mem::take(&mut st.panicked);
        drop(st);
        if panicked && !std::thread::panicking() {
            panic!("BspPool worker panicked during broadcast");
        }
    }
}

/// Split `weights.len()` items into at most `slots` contiguous, non-empty
/// ranges of approximately equal total weight (deterministic greedy cut at
/// proportional prefix targets). Used by the simulation engine to pin
/// partitions to pool slots: locality-aware partition maps can have uneven
/// per-partition agent counts, so ranges balance *weight*, not item count.
///
/// The returned ranges tile `0..weights.len()` exactly, in order. `slots`
/// is clamped to `1..=weights.len()`; an empty `weights` yields one empty
/// range. Zero weights are allowed (treated as weight 0 but still
/// occupying an item slot).
pub fn balanced_ranges(weights: &[u64], slots: usize) -> Vec<std::ops::Range<usize>> {
    let n = weights.len();
    if n == 0 {
        return std::iter::once(0..0).collect();
    }
    let slots = slots.clamp(1, n);
    let total: u64 = weights.iter().sum();
    let mut out = Vec::with_capacity(slots);
    let mut start = 0usize;
    let mut acc = 0u64;
    for s in 0..slots {
        // Cut once the cumulative weight reaches the proportional target,
        // always taking at least one item and leaving one per later slot;
        // the last slot takes everything left.
        let end = if s == slots - 1 {
            n
        } else {
            let target = ((total as u128 * (s as u128 + 1)) / slots as u128) as u64;
            let max_end = n - (slots - 1 - s);
            let mut e = start + 1;
            acc += weights[start];
            while e < max_end && acc < target {
                acc += weights[e];
                e += 1;
            }
            e
        };
        out.push(start..end);
        start = end;
    }
    out
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    break;
                }
                st = shared.work.wait(st).unwrap();
            }
            seen = st.epoch;
            if index >= st.active {
                continue; // sitting this round out
            }
            st.job.expect("active epoch without a job")
        };
        let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _flag = BroadcastFlag::set();
            // SAFETY: the submitter blocks until we check in below, so the
            // closure behind the pointer is alive for the whole call.
            unsafe { (*job.0)(index + 1) }
        }))
        .is_ok();
        let mut st = shared.state.lock().unwrap();
        if !ok {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn balanced_ranges_tile_exactly() {
        for (n, slots) in [(1usize, 1usize), (5, 2), (8, 3), (7, 7), (4, 9)] {
            let w: Vec<u64> = (0..n as u64).map(|i| i + 1).collect();
            let r = balanced_ranges(&w, slots);
            assert_eq!(r.len(), slots.min(n));
            assert_eq!(r[0].start, 0);
            assert_eq!(r.last().unwrap().end, n);
            for pair in r.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
                assert!(!pair[1].is_empty());
            }
            assert!(!r[0].is_empty());
        }
    }

    #[test]
    fn balanced_ranges_balance_weight_not_count() {
        // One heavy item and many light ones: the heavy item gets its own
        // range instead of dragging half the light ones with it.
        let w = [100u64, 1, 1, 1, 1, 1, 1, 1];
        let r = balanced_ranges(&w, 2);
        assert_eq!(r[0], 0..1);
        assert_eq!(r[1], 1..8);
        // Uniform weights reduce to near-equal item counts.
        let r = balanced_ranges(&[1u64; 8], 4);
        assert_eq!(r, vec![0..2, 2..4, 4..6, 6..8]);
    }

    #[test]
    fn balanced_ranges_degenerate_inputs() {
        assert_eq!(balanced_ranges(&[], 3), vec![0..0]);
        assert_eq!(balanced_ranges(&[5], 1), vec![0..1]);
        // All-zero weights still tile.
        let r = balanced_ranges(&[0u64; 4], 2);
        assert_eq!(r.last().unwrap().end, 4);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn broadcast_runs_every_slot_exactly_once() {
        let pool = BspPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(4, |s| {
            hits[s].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn broadcast_is_reusable_many_times() {
        let pool = BspPool::new(3);
        let sum = AtomicU64::new(0);
        for _ in 0..500 {
            pool.broadcast(3, |s| {
                sum.fetch_add(s as u64 + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 500 * (1 + 2 + 3));
    }

    #[test]
    fn slots_are_pinned_to_the_same_threads() {
        let pool = BspPool::new(3);
        let owners: Vec<Mutex<HashSet<std::thread::ThreadId>>> =
            (0..3).map(|_| Mutex::new(HashSet::new())).collect();
        for _ in 0..100 {
            pool.broadcast(3, |s| {
                owners[s]
                    .lock()
                    .unwrap()
                    .insert(std::thread::current().id());
            });
        }
        for (s, owner) in owners.iter().enumerate() {
            assert_eq!(
                owner.lock().unwrap().len(),
                1,
                "slot {s} migrated between threads"
            );
        }
        assert!(owners[0]
            .lock()
            .unwrap()
            .contains(&std::thread::current().id()));
    }

    #[test]
    fn fewer_slots_than_workers_leaves_the_rest_idle() {
        let pool = BspPool::new(4);
        let max_slot = AtomicUsize::new(0);
        let calls = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.broadcast(2, |s| {
                max_slot.fetch_max(s, Ordering::Relaxed);
                calls.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(max_slot.load(Ordering::Relaxed), 1);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_worker_pool_runs_inline() {
        let pool = BspPool::new(1);
        let here = std::thread::current().id();
        let ran = AtomicUsize::new(0);
        pool.broadcast(8, |s| {
            assert_eq!(s, 0);
            assert_eq!(std::thread::current().id(), here);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = BspPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(2, |s| {
                if s == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "worker panic must propagate");
        // The pool must still work after a failed broadcast.
        let ok = AtomicUsize::new(0);
        pool.broadcast(2, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn concurrent_submitters_serialize_safely() {
        // Many threads share one pool (the global_pool situation when the
        // test harness runs #[test]s in parallel): every broadcast must
        // still run each of its slots exactly once.
        let pool = BspPool::new(3);
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..200 {
                        pool.broadcast(3, |slot| {
                            sum.fetch_add(slot as u64 + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4 * 200 * (1 + 2 + 3));
    }

    #[test]
    fn nested_broadcast_runs_inline_without_deadlock() {
        let pool = BspPool::new(3);
        let inner_calls = AtomicUsize::new(0);
        let outer_calls = AtomicUsize::new(0);
        pool.broadcast(3, |_| {
            outer_calls.fetch_add(1, Ordering::Relaxed);
            // A job that itself broadcasts (e.g. a rayon-shim scope task
            // using par_iter_mut) must not dead-lock or corrupt the
            // barrier: it degrades to an inline loop over its slots.
            pool.broadcast(2, |_| {
                inner_calls.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer_calls.load(Ordering::Relaxed), 3);
        assert_eq!(inner_calls.load(Ordering::Relaxed), 3 * 2);
    }

    #[test]
    fn env_override_precedence() {
        let env = |pairs: &'static [(&'static str, &'static str)]| {
            move |k: &str| {
                pairs
                    .iter()
                    .find(|(key, _)| *key == k)
                    .map(|(_, v)| v.to_string())
            }
        };
        assert_eq!(resolve_threads(env(&[("WSDF_THREADS", "3")])), Some(3));
        assert_eq!(resolve_threads(env(&[("RAYON_NUM_THREADS", "7")])), Some(7));
        assert_eq!(
            resolve_threads(env(&[("WSDF_THREADS", "2"), ("RAYON_NUM_THREADS", "9")])),
            Some(2),
            "WSDF_THREADS wins"
        );
        assert_eq!(resolve_threads(env(&[("WSDF_THREADS", "0")])), None);
        assert_eq!(resolve_threads(env(&[("WSDF_THREADS", "lots")])), None);
        assert_eq!(resolve_threads(env(&[])), None);
        assert_eq!(resolve_threads(env(&[("WSDF_THREADS", " 4 ")])), Some(4));
    }

    #[test]
    fn global_pool_is_shared_and_sized_by_config() {
        let a = global_pool() as *const BspPool;
        let b = global_pool() as *const BspPool;
        assert_eq!(a, b);
        assert_eq!(global_pool().workers(), configured_threads());
        assert!(configured_threads() >= 1);
    }
}
