//! # wsdf-routing — routing algorithms and virtual-channel disciplines
//!
//! Implements Sec. IV of the paper:
//!
//! * [`mesh`] — XY dimension-order routing for standalone meshes and the
//!   trivial single-switch oracle (the Fig. 10(a,b) pair).
//! * [`switchless`] — minimal (Algorithm 1) and non-minimal (Valiant)
//!   routing on the switch-less Dragonfly with two VC disciplines:
//!   * **Baseline** (Sec. IV-A): one VC per C-group visited — 4 VCs
//!     minimal, 6 VCs non-minimal.
//!   * **Reduced** (Sec. IV-B): up*/down*-merged VCs — 3 VCs minimal,
//!     4 VCs non-minimal ("only one additional VC against the traditional
//!     Dragonfly"). Legality rests on the Property-1/2 labeling and the
//!     perimeter converter chain; see DESIGN.md for the interpretation.
//! * [`switchbased`] — Kim et al. minimal (2 VCs) and Valiant (3 VCs)
//!   routing for the switch-based baseline.
//! * [`walk`] — a pure route walker over a built network: used by tests to
//!   verify reachability, hop counts (Eq. 7 diameters), up*/down* legality
//!   and VC monotonicity without running the simulator.

#![deny(missing_docs)]

pub mod fault;
pub mod mesh;
pub mod switchbased;
pub mod switchless;
pub mod walk;

pub use fault::{DetourOracle, PathVerdict, ReachMap};
pub use mesh::{MeshOracle, SwitchNodeOracle};
pub use switchbased::SwOracle;
pub use switchless::{SlOracle, VcScheme};
pub use walk::{PortMap, RouteTrace, Walker};

/// Minimal vs non-minimal (Valiant) routing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMode {
    /// Shortest paths only (Algorithm 1 in the paper).
    Minimal,
    /// Valiant misrouting through a uniformly random intermediate
    /// W-group/group for every inter-group packet.
    Valiant,
}

impl RouteMode {
    /// Stable lowercase name used by scenario files and reports.
    pub fn name(self) -> &'static str {
        match self {
            RouteMode::Minimal => "minimal",
            RouteMode::Valiant => "valiant",
        }
    }

    /// Inverse of [`RouteMode::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "minimal" => Some(RouteMode::Minimal),
            "valiant" => Some(RouteMode::Valiant),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{RouteMode, VcScheme};

    #[test]
    fn mode_and_scheme_names_round_trip() {
        for m in [RouteMode::Minimal, RouteMode::Valiant] {
            assert_eq!(RouteMode::from_name(m.name()), Some(m));
        }
        for s in [VcScheme::Baseline, VcScheme::Reduced] {
            assert_eq!(VcScheme::from_name(s.name()), Some(s));
        }
        assert_eq!(RouteMode::from_name("Minimal"), None);
        assert_eq!(VcScheme::from_name(""), None);
    }
}
