//! Fault-aware routing: precomputed detours over the live subgraph.
//!
//! The topology-specific oracles ([`crate::SlOracle`], [`crate::SwOracle`],
//! …) derive every hop from address arithmetic on the *pristine* fabric;
//! a dead link breaks their correctness, and patching detours into them
//! case-by-case would break their deadlock arguments. [`DetourOracle`]
//! instead routes any fabric with arbitrary dead links/routers, using the
//! classic fault-tolerant discipline:
//!
//! * Build the **live graph** (surviving routers and channels) and a BFS
//!   spanning order per connected component (root = lowest live router id;
//!   routers ranked by `(BFS level, id)`).
//! * Route **up\*/down\***: every path is zero or more *up* edges (toward
//!   the root in rank order) followed by zero or more *down* edges. Any
//!   two routers of one component are connected by such a path (through
//!   the root if necessary), and the discipline is deadlock-free: up-edge
//!   dependencies follow the rank order, down-edge dependencies its
//!   reverse, and the phase change is one-way.
//! * The phase rides the VC: **VC 0 = up phase, VC 1 = down phase**, so
//!   the VC order is monotone along every route (2 VCs total) and the
//!   per-hop decision is a pure table lookup on `(destination router,
//!   phase, current router)` — precomputed shortest *legal* paths via a
//!   two-state backward BFS per destination.
//!
//! Endpoint pairs in different components (or with a dead attach router)
//! get an explicit [`PathVerdict::Unreachable`]; asking `route` for such a
//! packet is a hard panic, mirroring the engine's dead-channel asserts.
//! [`ReachMap`] is the cheap per-endpoint summary workloads use to filter
//! traffic down to routable pairs.
//!
//! Table memory is `2 × routers × destination-routers` bytes (plus the
//! build-time BFS): meant for C-group/W-group-scale resilience studies,
//! not the full 18560-chip system in one piece.

use wsdf_sim::{
    FaultMap, NetworkDesc, PacketHeader, RouteChoice, RouteOracle, SplitMix64, Terminus,
};

/// Reachability of one endpoint pair under a fault set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathVerdict {
    /// A legal up*/down* route exists over the live graph.
    Routed,
    /// No route: an attach router is dead, or the endpoints sit in
    /// different connected components of the live graph.
    Unreachable,
}

/// Component id of a dead router / endpoint on a dead router.
const DEAD: u32 = u32::MAX;
/// Table entry for "no legal next hop".
const NO_HOP: u8 = 0xFF;
/// Table-entry flag: this hop is (or enters) the down phase → VC 1.
const DOWN_BIT: u8 = 0x80;

/// Per-endpoint reachability summary of a fault set: which endpoints are
/// alive and which pairs are mutually routable. Cheap to clone and share
/// with traffic patterns / workload builders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachMap {
    /// Component id per endpoint ([`DEAD`] = attach router dead).
    comp: std::sync::Arc<Vec<u32>>,
}

impl ReachMap {
    /// True if `ep`'s attach router survived.
    #[inline]
    pub fn live(&self, ep: u32) -> bool {
        self.comp[ep as usize] != DEAD
    }

    /// True if traffic from `src` can reach `dst` (both alive, same live
    /// component).
    #[inline]
    pub fn routable(&self, src: u32, dst: u32) -> bool {
        let c = self.comp[src as usize];
        c != DEAD && c == self.comp[dst as usize]
    }

    /// Endpoints covered by the map.
    pub fn endpoints(&self) -> u32 {
        self.comp.len() as u32
    }

    /// Endpoints whose attach router survived.
    pub fn live_endpoints(&self) -> u32 {
        self.comp.iter().filter(|&&c| c != DEAD).count() as u32
    }

    /// Ordered endpoint pairs `(s, d)` with `s != d` that are *not*
    /// routable (dead ends included).
    pub fn unreachable_pairs(&self) -> u64 {
        let n = self.comp.len() as u64;
        let mut sizes = std::collections::HashMap::new();
        for &c in self.comp.iter().filter(|&&c| c != DEAD) {
            *sizes.entry(c).or_insert(0u64) += 1;
        }
        let routable: u64 = sizes.values().map(|&s| s * (s - 1)).sum();
        n * (n - 1) - routable
    }

    /// The live endpoints of the largest component (ties broken toward the
    /// lower component id), ascending — the natural participant set for a
    /// collective on a degraded fabric.
    pub fn largest_component_endpoints(&self) -> Vec<u32> {
        let mut sizes = std::collections::HashMap::new();
        for &c in self.comp.iter().filter(|&&c| c != DEAD) {
            *sizes.entry(c).or_insert(0u64) += 1;
        }
        let Some((&best, _)) = sizes
            .iter()
            .max_by_key(|(&c, &s)| (s, std::cmp::Reverse(c)))
        else {
            return Vec::new();
        };
        self.comp
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == best)
            .map(|(e, _)| e as u32)
            .collect()
    }
}

/// Fault-aware table-routing oracle (see the module docs).
#[derive(Debug, Clone)]
pub struct DetourOracle {
    routers: u32,
    /// Endpoint → attach router.
    ep_router: Vec<u32>,
    /// Endpoint → ejection port on its attach router.
    eject_port: Vec<u8>,
    /// Endpoint → live-component id ([`DEAD`] if the attach router died).
    comp: std::sync::Arc<Vec<u32>>,
    /// Destination-router → dense table index ([`u32::MAX`] = not a
    /// destination).
    dst_index: Vec<u32>,
    /// `(dst_index × 2 + phase) × routers + router` → port | [`DOWN_BIT`],
    /// or [`NO_HOP`].
    table: Vec<u8>,
}

impl DetourOracle {
    /// Precompute detour tables for `net` under `faults` (which must be
    /// sealed — see [`FaultMap::seal`]).
    pub fn build(net: &NetworkDesc, faults: &FaultMap) -> Self {
        faults
            .validate(net)
            .expect("fault map does not match network");
        let nr = net.num_routers();
        let ne = net.num_endpoints();

        // Endpoint attach points.
        let ep_router: Vec<u32> = net.endpoints.iter().map(|e| e.router).collect();
        let mut eject_port = vec![0u8; ne];
        for ch in &net.channels {
            if let (Terminus::Router { port, .. }, Terminus::Endpoint { endpoint }) =
                (ch.src, ch.dst)
            {
                eject_port[endpoint as usize] = port;
            }
        }

        // Live adjacency, port-ordered (determinism: ties resolve to the
        // lowest port).
        let mut adj: Vec<Vec<(u8, u32)>> = vec![Vec::new(); nr];
        for (c, ch) in net.channels.iter().enumerate() {
            if faults.channel_dead(c as u32) {
                continue;
            }
            if let (
                Terminus::Router {
                    router: r1,
                    port: p1,
                },
                Terminus::Router { router: r2, .. },
            ) = (ch.src, ch.dst)
            {
                if !faults.router_dead(r1) && !faults.router_dead(r2) {
                    // The table encodes `port | DOWN_BIT` in one byte, and
                    // 0x7F | DOWN_BIT would collide with NO_HOP: ports must
                    // stay below 0x7F (the engine caps radix far lower).
                    assert!(
                        p1 < NO_HOP & !DOWN_BIT,
                        "router {r1} port {p1} exceeds the detour table's port encoding"
                    );
                    adj[r1 as usize].push((p1, r2));
                }
            }
        }
        for a in &mut adj {
            a.sort_unstable();
        }

        // BFS components + levels; root = lowest live id of each component.
        let mut comp_of = vec![DEAD; nr];
        let mut level = vec![u32::MAX; nr];
        let mut queue = std::collections::VecDeque::new();
        let mut ncomp = 0u32;
        for r in 0..nr {
            if comp_of[r] != DEAD || faults.router_dead(r as u32) {
                continue;
            }
            comp_of[r] = ncomp;
            level[r] = 0;
            queue.push_back(r as u32);
            while let Some(v) = queue.pop_front() {
                for &(_, w) in &adj[v as usize] {
                    if comp_of[w as usize] == DEAD {
                        comp_of[w as usize] = ncomp;
                        level[w as usize] = level[v as usize] + 1;
                        queue.push_back(w);
                    }
                }
            }
            ncomp += 1;
        }

        // Rank order: (level, id); an edge v→w is *up* iff w outranks v.
        let rank = |r: u32| (level[r as usize], r);
        let is_up = |v: u32, w: u32| rank(w) < rank(v);

        // Destinations: live attach routers of endpoints.
        let mut dst_index = vec![u32::MAX; nr];
        let mut dsts = Vec::new();
        for &r in &ep_router {
            if !faults.router_dead(r) && dst_index[r as usize] == u32::MAX {
                dst_index[r as usize] = dsts.len() as u32;
                dsts.push(r);
            }
        }

        // Per destination: two-state backward BFS for shortest legal
        // distances, then a forward pass picking each router's best hop.
        const UNREACH: u32 = u32::MAX;
        let mut table = vec![NO_HOP; dsts.len() * 2 * nr];
        let mut du = vec![UNREACH; nr];
        let mut dd = vec![UNREACH; nr];
        let mut bfs: std::collections::VecDeque<(u32, bool)> = std::collections::VecDeque::new();
        for (di, &d) in dsts.iter().enumerate() {
            du.fill(UNREACH);
            dd.fill(UNREACH);
            du[d as usize] = 0;
            dd[d as usize] = 0;
            bfs.clear();
            bfs.push_back((d, false)); // (router, in down phase)
            bfs.push_back((d, true));
            while let Some((w, down)) = bfs.pop_front() {
                // Incoming edges mirror outgoing ones (fabric links are
                // wired in pairs); walk w's neighbors as predecessors.
                for &(_, v) in &adj[w as usize] {
                    if comp_of[v as usize] != comp_of[d as usize] {
                        continue;
                    }
                    if down {
                        // Predecessors of (w, D) cross a down edge v→w.
                        if is_up(w, v) {
                            // v→w is down ⟺ w→v is up.
                            let nd = dd[w as usize] + 1;
                            if dd[v as usize] == UNREACH {
                                dd[v as usize] = nd;
                                bfs.push_back((v, true));
                            }
                            if du[v as usize] == UNREACH {
                                du[v as usize] = nd;
                                bfs.push_back((v, false));
                            }
                        }
                    } else {
                        // Predecessors of (w, U) cross an up edge v→w.
                        if is_up(v, w) {
                            let nd = du[w as usize] + 1;
                            if du[v as usize] == UNREACH {
                                du[v as usize] = nd;
                                bfs.push_back((v, false));
                            }
                        }
                    }
                }
            }
            // Forward pass: best legal hop per (router, phase).
            for v in 0..nr as u32 {
                if comp_of[v as usize] != comp_of[d as usize] || v == d {
                    continue;
                }
                let mut best_u: (u32, u8) = (UNREACH, NO_HOP);
                let mut best_d: (u32, u8) = (UNREACH, NO_HOP);
                for &(p, w) in &adj[v as usize] {
                    if is_up(v, w) {
                        if du[w as usize] != UNREACH && du[w as usize] + 1 < best_u.0 {
                            best_u = (du[w as usize] + 1, p);
                        }
                    } else if dd[w as usize] != UNREACH {
                        let c = dd[w as usize] + 1;
                        if c < best_u.0 {
                            best_u = (c, p | DOWN_BIT);
                        }
                        if c < best_d.0 {
                            best_d = (c, p | DOWN_BIT);
                        }
                    }
                }
                debug_assert_eq!(best_u.0, du[v as usize], "router {v} → {d}");
                debug_assert_eq!(best_d.0, dd[v as usize], "router {v} → {d}");
                table[(di * 2) * nr + v as usize] = best_u.1;
                table[(di * 2 + 1) * nr + v as usize] = best_d.1;
            }
        }

        // Endpoint components.
        let comp: Vec<u32> = ep_router
            .iter()
            .map(|&r| {
                if faults.router_dead(r) {
                    DEAD
                } else {
                    comp_of[r as usize]
                }
            })
            .collect();

        DetourOracle {
            routers: nr as u32,
            ep_router,
            eject_port,
            comp: std::sync::Arc::new(comp),
            dst_index,
            table,
        }
    }

    /// Pristine-network convenience (used by tests; real pristine runs
    /// should keep their topology-specific oracle).
    pub fn pristine(net: &NetworkDesc) -> Self {
        Self::build(net, &FaultMap::pristine(net))
    }

    /// Reachability verdict for the endpoint pair `(src, dst)`.
    pub fn verdict(&self, src: u32, dst: u32) -> PathVerdict {
        if src != dst && self.reach_map().routable(src, dst) {
            PathVerdict::Routed
        } else {
            PathVerdict::Unreachable
        }
    }

    /// The per-endpoint reachability summary (cheap: shares the component
    /// vector).
    pub fn reach_map(&self) -> ReachMap {
        ReachMap {
            comp: self.comp.clone(),
        }
    }
}

impl RouteOracle for DetourOracle {
    fn route(
        &self,
        router: u32,
        _in_port: u8,
        in_vc: u8,
        pkt: &PacketHeader,
        _rng: &mut SplitMix64,
    ) -> RouteChoice {
        let dr = self.ep_router[pkt.dst as usize];
        if router == dr {
            return RouteChoice {
                out_port: self.eject_port[pkt.dst as usize],
                out_vc: in_vc,
            };
        }
        let di = self.dst_index[dr as usize];
        assert_ne!(
            di,
            u32::MAX,
            "unroutable packet {} → {}: destination router {dr} is dead",
            pkt.src,
            pkt.dst
        );
        let phase = usize::from(in_vc != 0);
        let e = self.table[(di as usize * 2 + phase) * self.routers as usize + router as usize];
        assert_ne!(
            e, NO_HOP,
            "unroutable packet {} → {} at router {router} (unreachable under faults)",
            pkt.src, pkt.dst
        );
        RouteChoice {
            out_port: e & !DOWN_BIT,
            out_vc: u8::from(e & DOWN_BIT != 0),
        }
    }

    fn initial_vc(&self, _pkt: &PacketHeader) -> u8 {
        0
    }

    fn num_vcs(&self) -> u8 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::{PortMap, Walker};
    use wsdf_sim::flit::NO_INTERMEDIATE;
    use wsdf_sim::ChannelClass;

    /// A 2×3 grid: routers 0..6, endpoint per router on port 0, +x on port
    /// 1/2, +y on port 3/4 (mirrors the mesh convention).
    fn grid() -> NetworkDesc {
        let mut net = NetworkDesc::new();
        for _ in 0..6 {
            net.add_router(5);
        }
        for r in 0..6u32 {
            let e = net.add_endpoint(r);
            net.attach_endpoint(e, r, 0, 1, 1);
        }
        // Rows: 0-1-2 / 3-4-5; columns 0-3, 1-4, 2-5.
        for (a, b) in [(0u32, 1u32), (1, 2), (3, 4), (4, 5)] {
            net.connect((a, 1), (b, 2), 1, 1, ChannelClass::ShortReach);
        }
        for (a, b) in [(0u32, 3u32), (1, 4), (2, 5)] {
            net.connect((a, 3), (b, 4), 1, 1, ChannelClass::ShortReach);
        }
        net
    }

    fn walk_all_pairs(net: &NetworkDesc, o: &DetourOracle, reach: &ReachMap) -> usize {
        let map = PortMap::new(net);
        let w = Walker::new(&map, o);
        let mut max_hops = 0;
        for s in 0..net.num_endpoints() as u32 {
            for d in 0..net.num_endpoints() as u32 {
                if s == d {
                    continue;
                }
                if reach.routable(s, d) {
                    let t = w.walk(s, d, NO_INTERMEDIATE).unwrap();
                    max_hops = max_hops.max(t.network_hops());
                    // Phase monotonicity: VC never drops 1 → 0.
                    for pair in t.vcs().windows(2) {
                        assert!(pair[0] <= pair[1], "{s}→{d}: down → up ({:?})", t.vcs());
                    }
                } else {
                    assert_eq!(o.verdict(s, d), PathVerdict::Unreachable);
                }
            }
        }
        max_hops
    }

    #[test]
    fn pristine_grid_routes_all_pairs_shortest() {
        let net = grid();
        let o = DetourOracle::pristine(&net);
        let reach = o.reach_map();
        assert_eq!(reach.live_endpoints(), 6);
        assert_eq!(reach.unreachable_pairs(), 0);
        let max = walk_all_pairs(&net, &o, &reach);
        // Grid diameter is 3 (corner to corner); up*/down* over the BFS
        // order of this grid achieves it.
        assert_eq!(max, 3);
    }

    #[test]
    fn detour_survives_a_cut_link() {
        let net = grid();
        // Kill the 1↔4 column (channels between routers 1 and 4).
        let mut faults = FaultMap::pristine(&net);
        for (c, ch) in net.channels.iter().enumerate() {
            let ends = (ch.src.router(), ch.dst.router());
            if matches!(ends, (Some(1), Some(4)) | (Some(4), Some(1))) {
                faults.kill_channel(c as u32);
            }
        }
        faults.seal(&net);
        let o = DetourOracle::build(&net, &faults);
        let reach = o.reach_map();
        assert_eq!(reach.unreachable_pairs(), 0, "grid stays connected");
        let map = PortMap::new(&net);
        let w = Walker::new(&map, &o);
        // 1 → 4 must detour through a neighbor column: 3 hops instead of 1.
        let t = w.walk(1, 4, NO_INTERMEDIATE).unwrap();
        assert_eq!(t.network_hops(), 3);
        walk_all_pairs(&net, &o, &reach);
    }

    #[test]
    fn dead_router_partitions_reachability_not_the_rest() {
        let net = grid();
        let mut faults = FaultMap::pristine(&net);
        faults.kill_router(4);
        faults.seal(&net);
        let o = DetourOracle::build(&net, &faults);
        let reach = o.reach_map();
        assert!(!reach.live(4));
        assert_eq!(reach.live_endpoints(), 5);
        // Endpoint 4 unreachable from everyone; the other 5 are still a
        // single component (5·4 routable ordered pairs).
        assert_eq!(reach.unreachable_pairs(), 30 - 20);
        assert_eq!(o.verdict(0, 4), PathVerdict::Unreachable);
        assert_eq!(o.verdict(4, 0), PathVerdict::Unreachable);
        assert_eq!(o.verdict(3, 5), PathVerdict::Routed);
        walk_all_pairs(&net, &o, &reach);
        assert_eq!(reach.largest_component_endpoints(), vec![0, 1, 2, 3, 5]);
    }

    #[test]
    fn split_fabric_yields_two_components() {
        let net = grid();
        // Cut both column links 0-3 and 1-4 and the row link 1-2 … that
        // still leaves a path; instead cut the grid into left (0,3) and
        // right (1,2,4,5): kill 0-1 and 3-4.
        let mut faults = FaultMap::pristine(&net);
        for (c, ch) in net.channels.iter().enumerate() {
            let ends = (ch.src.router(), ch.dst.router());
            if matches!(
                ends,
                (Some(0), Some(1)) | (Some(1), Some(0)) | (Some(3), Some(4)) | (Some(4), Some(3))
            ) {
                faults.kill_channel(c as u32);
            }
        }
        faults.seal(&net);
        let o = DetourOracle::build(&net, &faults);
        let reach = o.reach_map();
        assert!(reach.routable(0, 3) && reach.routable(1, 5));
        assert!(!reach.routable(0, 1) && !reach.routable(3, 2));
        // 2·1 + 4·3 = 14 routable ordered pairs of 30.
        assert_eq!(reach.unreachable_pairs(), 16);
        assert_eq!(reach.largest_component_endpoints(), vec![1, 2, 4, 5]);
        walk_all_pairs(&net, &o, &reach);
    }

    #[test]
    #[should_panic(expected = "unroutable")]
    fn routing_an_unreachable_packet_panics() {
        let net = grid();
        let mut faults = FaultMap::pristine(&net);
        faults.kill_router(4);
        faults.seal(&net);
        let o = DetourOracle::build(&net, &faults);
        let pkt = PacketHeader {
            id: 1,
            src: 0,
            dst: 4,
            inter_w: NO_INTERMEDIATE,
            created: 0,
            len: 4,
        };
        let mut rng = SplitMix64::new(0);
        o.route(0, 0, 0, &pkt, &mut rng);
    }

    #[test]
    fn tables_are_deterministic() {
        let net = grid();
        let mut faults = FaultMap::pristine(&net);
        faults.kill_channel(6);
        faults.seal(&net);
        let a = DetourOracle::build(&net, &faults);
        let b = DetourOracle::build(&net, &faults);
        assert_eq!(a.table, b.table);
        assert_eq!(a.comp, b.comp);
    }
}
