//! Routing for standalone intra-C-group fabrics (Fig. 10(a,b)).

use wsdf_sim::{PacketHeader, RouteChoice, RouteOracle, SplitMix64};
use wsdf_topo::core_port;

/// XY dimension-order routing on a standalone m×m mesh
/// ([`wsdf_topo::MeshFabric`]). Deadlock-free with a single VC.
#[derive(Debug, Clone)]
pub struct MeshOracle {
    m: u32,
}

impl MeshOracle {
    /// Oracle for a mesh of side `m`.
    pub fn new(m: u32) -> Self {
        MeshOracle { m }
    }
}

/// Next mesh port under XY routing from (x, y) toward (tx, ty); `None`
/// when already at the target.
pub(crate) fn xy_step(x: u32, y: u32, tx: u32, ty: u32) -> Option<u8> {
    if x < tx {
        Some(core_port::XP)
    } else if x > tx {
        Some(core_port::XM)
    } else if y < ty {
        Some(core_port::YP)
    } else if y > ty {
        Some(core_port::YM)
    } else {
        None
    }
}

impl RouteOracle for MeshOracle {
    fn route(
        &self,
        router: u32,
        _in_port: u8,
        _in_vc: u8,
        pkt: &PacketHeader,
        _rng: &mut SplitMix64,
    ) -> RouteChoice {
        let (x, y) = (router % self.m, router / self.m);
        let (tx, ty) = (pkt.dst % self.m, pkt.dst / self.m);
        let out_port = xy_step(x, y, tx, ty).unwrap_or(core_port::EP);
        RouteChoice {
            out_port,
            out_vc: 0,
        }
    }

    fn initial_vc(&self, _pkt: &PacketHeader) -> u8 {
        0
    }

    fn num_vcs(&self) -> u8 {
        1
    }
}

/// Oracle for a single ideal switch ([`wsdf_topo::SwitchNode`]): the output
/// port is the destination's terminal port.
///
/// The input VC doubles as a virtual output queue (`vc = dst mod vcs`):
/// with one VC an input-queued crossbar saturates at Karol's 58.6% HOL
/// limit, while the paper's "ideal high-radix router" reaches 1
/// flit/cycle/chip. Sixteen VOQ VCs restore the ideal behavior.
#[derive(Debug, Clone)]
pub struct SwitchNodeOracle {
    vcs: u8,
}

impl SwitchNodeOracle {
    /// Ideal switch with `vcs` virtual output queues (16 ≈ ideal for the
    /// paper's radix-16 intra-switch experiment).
    pub fn new(vcs: u8) -> Self {
        assert!(vcs >= 1);
        SwitchNodeOracle { vcs }
    }
}

impl Default for SwitchNodeOracle {
    fn default() -> Self {
        Self::new(16)
    }
}

impl RouteOracle for SwitchNodeOracle {
    fn route(
        &self,
        _router: u32,
        _in_port: u8,
        _in_vc: u8,
        pkt: &PacketHeader,
        _rng: &mut SplitMix64,
    ) -> RouteChoice {
        RouteChoice {
            out_port: pkt.dst as u8,
            out_vc: (pkt.dst % self.vcs as u32) as u8,
        }
    }

    fn initial_vc(&self, pkt: &PacketHeader) -> u8 {
        (pkt.dst % self.vcs as u32) as u8
    }

    fn num_vcs(&self) -> u8 {
        self.vcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_goes_x_first() {
        assert_eq!(xy_step(0, 0, 2, 2), Some(core_port::XP));
        assert_eq!(xy_step(2, 0, 2, 2), Some(core_port::YP));
        assert_eq!(xy_step(3, 3, 1, 1), Some(core_port::XM));
        assert_eq!(xy_step(1, 3, 1, 1), Some(core_port::YM));
        assert_eq!(xy_step(1, 1, 1, 1), None);
    }

    #[test]
    fn mesh_oracle_ejects_at_destination() {
        let o = MeshOracle::new(4);
        let pkt = PacketHeader {
            id: 0,
            src: 0,
            dst: 5, // (1,1)
            inter_w: u32::MAX,
            created: 0,
            len: 4,
        };
        let mut rng = SplitMix64::new(1);
        let c = o.route(5, 0, 0, &pkt, &mut rng);
        assert_eq!(c.out_port, core_port::EP);
    }

    #[test]
    fn mesh_routes_terminate() {
        // Walk the oracle's decisions manually on a 5×5 mesh.
        let m = 5u32;
        let o = MeshOracle::new(m);
        let mut rng = SplitMix64::new(2);
        for src in 0..m * m {
            for dst in 0..m * m {
                if src == dst {
                    continue;
                }
                let pkt = PacketHeader {
                    id: 0,
                    src,
                    dst,
                    inter_w: u32::MAX,
                    created: 0,
                    len: 4,
                };
                let mut at = src;
                let mut hops = 0;
                loop {
                    let c = o.route(at, 0, 0, &pkt, &mut rng);
                    if c.out_port == core_port::EP {
                        break;
                    }
                    let (x, y) = (at % m, at / m);
                    at = match c.out_port {
                        p if p == core_port::XP => y * m + x + 1,
                        p if p == core_port::XM => y * m + x - 1,
                        p if p == core_port::YP => (y + 1) * m + x,
                        p if p == core_port::YM => (y - 1) * m + x,
                        p => panic!("bad port {p}"),
                    };
                    hops += 1;
                    assert!(hops <= 2 * (m - 1), "route too long");
                }
                assert_eq!(at, dst);
                // XY is minimal.
                let (sx, sy) = (src % m, src / m);
                let (dx, dy) = (dst % m, dst / m);
                assert_eq!(hops, sx.abs_diff(dx) + sy.abs_diff(dy));
            }
        }
    }
}
