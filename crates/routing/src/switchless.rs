//! Minimal and non-minimal routing on the switch-less Dragonfly
//! (Sec. IV of the paper), with the Baseline and Reduced VC disciplines.
//!
//! ## Route structure (Algorithm 1)
//!
//! A packet from (ws, cs, ns) to (wd, cd, nd) traverses up to seven steps:
//! route-within-C-group to the node attached to the exit port, a local
//! channel, RWC, a global channel, RWC, a local channel, RWC to nd. In this
//! topology every external port is an SR-LR converter, so "the node that
//! has the channel" is the converter's attach core, and each inter-C-group
//! hop costs two extra short-reach hops (core→converter, converter→core) —
//! exactly the `+2 H_sr` per hop of Eq. (7).
//!
//! ## VC disciplines
//!
//! * [`VcScheme::Baseline`]: the VC index increases at every C-group along
//!   the path (Sec. IV-A): source C-group 0, second C-group of the source
//!   W-group 1, then 2/3 (minimal) or 2..5 (Valiant). Intra-C-group routing
//!   is plain XY through the mesh. Deadlock-free because each VC class's
//!   channel-dependency graph is confined to one C-group's acyclic
//!   XY-mesh plus terminal inter-group channels.
//! * [`VcScheme::Reduced`]: Sec. IV-B — all C-groups of the destination
//!   W-group share VC 2, and (for Valiant) all C-groups of the intermediate
//!   W-group share VC 3: 3 VCs minimal, 4 non-minimal. Deadlock freedom
//!   inside a shared-VC W-group comes from up*/down* routing over the
//!   order (C-group, core row-major, converters above cores): packets ride
//!   the perimeter converter chain and enter the mesh at a core that
//!   dominates the destination, descending with −x/−y moves only. Every
//!   route is an up-phase followed by a down-phase, so the VC-2/VC-3
//!   dependency graphs are acyclic (classic up*/down* argument). This
//!   trades some path length through the chain for the smaller VC count —
//!   quantified by the `vc_ablation` bench.

use crate::mesh::xy_step;
use crate::RouteMode;
use wsdf_sim::{flit::NO_INTERMEDIATE, PacketHeader, RouteChoice, RouteOracle, SplitMix64};
use wsdf_topo::address::PortRole;
use wsdf_topo::{conv_port, core_port, SlParams};

/// Virtual-channel discipline for the switch-less Dragonfly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcScheme {
    /// One VC per C-group visited: 4 VCs minimal / 6 Valiant (Sec. IV-A).
    Baseline,
    /// Up*/down*-merged W-group VCs: 3 minimal / 4 Valiant (Sec. IV-B).
    Reduced,
}

impl VcScheme {
    /// Stable lowercase name used by scenario files and reports.
    pub fn name(self) -> &'static str {
        match self {
            VcScheme::Baseline => "baseline",
            VcScheme::Reduced => "reduced",
        }
    }

    /// Inverse of [`VcScheme::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "baseline" => Some(VcScheme::Baseline),
            "reduced" => Some(VcScheme::Reduced),
            _ => None,
        }
    }
}

/// Routing oracle for [`wsdf_topo::SwitchlessFabric`].
#[derive(Debug, Clone)]
pub struct SlOracle {
    p: SlParams,
    mode: RouteMode,
    scheme: VcScheme,
    /// Sub-VCs per deadlock class (head-of-line relief; the deadlock
    /// argument only depends on the class ordering).
    spread: u8,
}

/// Default sub-VCs per class (matches the baseline switches' relief; see
/// `wsdf_routing::switchbased::SwOracle`).
const DEFAULT_SPREAD: u8 = 2;

/// Where a packet must leave the current C-group, or eject locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Objective {
    /// Leave through the external port with this label.
    Exit(u32),
    /// Deliver to this core (x, y) in the current C-group.
    Core(u32, u32),
}

impl SlOracle {
    /// Build an oracle; `Reduced` requires `h ≥ m` (all up-local labels
    /// above every top-row ring position — see DESIGN.md), which holds for
    /// both paper configurations.
    pub fn new(p: &SlParams, mode: RouteMode, scheme: VcScheme) -> Self {
        if scheme == VcScheme::Reduced {
            assert!(
                p.h() >= p.m,
                "Reduced VC scheme requires h >= m (h = {}, m = {})",
                p.h(),
                p.m
            );
        }
        SlOracle {
            p: *p,
            mode,
            scheme,
            spread: DEFAULT_SPREAD,
        }
    }

    /// Override the sub-VC spread (1 = the paper's literal VC counts).
    pub fn with_spread(mut self, spread: u8) -> Self {
        assert!(spread >= 1);
        self.spread = spread;
        self
    }

    /// Concrete VC for a class: class-major, hash-spread within.
    fn vc(&self, class: u8, pkt: &PacketHeader) -> u8 {
        let h = (SplitMix64::new(pkt.id ^ 0x3DF1).next_u64() % self.spread as u64) as u8;
        class * self.spread + h
    }

    /// Minimal routing with the Baseline VC discipline.
    pub fn minimal(p: &SlParams) -> Self {
        Self::new(p, RouteMode::Minimal, VcScheme::Baseline)
    }

    /// Valiant routing with the Baseline VC discipline.
    pub fn valiant(p: &SlParams) -> Self {
        Self::new(p, RouteMode::Valiant, VcScheme::Baseline)
    }

    /// The parameters this oracle routes over.
    pub fn params(&self) -> &SlParams {
        &self.p
    }

    /// The W-group the packet currently heads for.
    fn target_wgroup(&self, w: u32, pkt: &PacketHeader) -> u32 {
        let wd = self.p.wgroup_of_endpoint(pkt.dst);
        if w == wd {
            wd
        } else if pkt.inter_w != NO_INTERMEDIATE && w != pkt.inter_w {
            pkt.inter_w
        } else {
            wd
        }
    }

    /// C-group holding the chosen global port toward `target` from W-group
    /// `w`, plus the port's label. Trunk choice hashes the packet id.
    fn global_exit(&self, w: u32, target: u32, pkt: &PacketHeader) -> (u32, u32) {
        let p = &self.p;
        let wn = p.wgroups;
        let ports = p.ab() * p.h();
        let off = (target + wn - w - 1) % wn;
        debug_assert!(off < wn - 1, "target_wgroup == w");
        let mut trunks = 0;
        let mut q = off;
        while q < ports {
            if p.global_peer(w, q).is_some() {
                trunks += 1;
            }
            q += wn - 1;
        }
        debug_assert!(trunks > 0, "palmtree must keep W-groups all-to-all");
        let pick = (SplitMix64::new(pkt.id ^ 0xA5A5).next_u64() % trunks as u64) as u32;
        let mut seen = 0;
        let mut q = off;
        loop {
            if p.global_peer(w, q).is_some() {
                if seen == pick {
                    break;
                }
                seen += 1;
            }
            q += wn - 1;
        }
        let (c, j) = (q / p.h(), q % p.h());
        (c, p.global_port_label(c, j))
    }

    /// What the packet must do inside C-group (w, c).
    fn objective(&self, w: u32, c: u32, pkt: &PacketHeader) -> Objective {
        let p = &self.p;
        let (wd, cd, xd, yd) = p.endpoint_location(pkt.dst);
        let target = self.target_wgroup(w, pkt);
        if target != w {
            // Leave the W-group: reach the C-group with the global port.
            let (cb, label) = self.global_exit(w, target, pkt);
            if c == cb {
                Objective::Exit(label)
            } else {
                Objective::Exit(p.local_port_label(c, cb))
            }
        } else {
            debug_assert_eq!(w, wd);
            if c == cd {
                Objective::Core(xd, yd)
            } else {
                Objective::Exit(p.local_port_label(c, cd))
            }
        }
    }

    /// VC class of the packet when located at (w, c) — the downstream
    /// location of the hop being granted.
    fn vc_class(&self, w: u32, c: u32, pkt: &PacketHeader) -> u8 {
        let p = &self.p;
        let (ws, cs, _, _) = p.endpoint_location(pkt.src);
        let (wd, cd, _, _) = p.endpoint_location(pkt.dst);
        let at_src_cg = w == ws && c == cs;
        let misrouted = pkt.inter_w != NO_INTERMEDIATE;
        match self.scheme {
            VcScheme::Baseline => {
                if w == wd {
                    // Destination W-group (for local traffic the source
                    // C-group still counts as class 0).
                    if at_src_cg {
                        0
                    } else if misrouted {
                        if c == cd {
                            5
                        } else {
                            4
                        }
                    } else if c == cd {
                        3
                    } else {
                        2
                    }
                } else if w == ws {
                    if c == cs {
                        0
                    } else {
                        1
                    }
                } else {
                    // Intermediate (misrouting) W-group: entry C-groups get
                    // class 2, the global-exit C-group class 3.
                    let target = self.target_wgroup(w, pkt);
                    let (cb, _) = self.global_exit(w, target, pkt);
                    if c == cb {
                        3
                    } else {
                        2
                    }
                }
            }
            VcScheme::Reduced => {
                if w == wd {
                    if at_src_cg {
                        0
                    } else {
                        2
                    }
                } else if w == ws {
                    if c == cs {
                        0
                    } else {
                        1
                    }
                } else {
                    3
                }
            }
        }
    }

    /// Route at a core router under the Baseline (XY) discipline.
    fn route_core_xy(&self, w: u32, c: u32, x: u32, y: u32, obj: Objective) -> u8 {
        match obj {
            Objective::Core(xd, yd) => xy_step(x, y, xd, yd).unwrap_or(core_port::EP),
            Objective::Exit(label) => {
                let (ax, ay) = self.p.ring_to_xy(label);
                let _ = (w, c);
                xy_step(x, y, ax, ay).unwrap_or(core_port::CONV)
            }
        }
    }

    /// Route at a core router under the Reduced discipline. Cores are only
    /// visited by class-0 (source C-group, XY toward the exit) and class-2
    /// descent segments; the descent uses −x/−y moves only.
    fn route_core_reduced(&self, w: u32, c: u32, x: u32, y: u32, obj: Objective, class: u8) -> u8 {
        match obj {
            Objective::Core(xd, yd) => {
                if class == 0 {
                    // Pure intra-C-group traffic: XY is fine (class 0 is
                    // confined to this mesh).
                    return xy_step(x, y, xd, yd).unwrap_or(core_port::EP);
                }
                // Descent phase: the entry core dominates the destination.
                debug_assert!(
                    x >= xd && y >= yd,
                    "descent invariant violated at ({x},{y}) → ({xd},{yd})"
                );
                if x > xd {
                    core_port::XM
                } else if y > yd {
                    core_port::YM
                } else {
                    core_port::EP
                }
            }
            Objective::Exit(label) => {
                // Only the source C-group (class 0) routes core→exit; it may
                // use XY because class 0 never leaves this mesh.
                debug_assert_eq!(class, 0, "reduced scheme: core exit outside class 0");
                let _ = (w, c);
                let (ax, ay) = self.p.ring_to_xy(label);
                xy_step(x, y, ax, ay).unwrap_or(core_port::CONV)
            }
        }
    }

    /// Route at a converter with label `l` under the Baseline discipline:
    /// exit here, or dive into the mesh (chain ports unused).
    fn route_conv_xy(&self, l: u32, obj: Objective) -> u8 {
        match obj {
            Objective::Exit(label) if label == l => conv_port::EXT,
            _ => conv_port::CORE,
        }
    }

    /// Route at a converter with label `l` under the Reduced discipline:
    /// walk the perimeter chain to the exit label, or to a mesh entry that
    /// dominates the destination core.
    fn route_conv_reduced(&self, l: u32, obj: Objective) -> u8 {
        match obj {
            Objective::Exit(label) => {
                if label == l {
                    conv_port::EXT
                } else if label > l {
                    conv_port::NEXT
                } else {
                    conv_port::PREV
                }
            }
            Objective::Core(xd, yd) => {
                // Ring positions whose attach core dominates (xd, yd):
                // the contiguous range [xd, 2(m−1)−yd] (top row right of xd,
                // the top-right corner, right column above yd).
                let hi = 2 * (self.p.m - 1) - yd;
                if l < xd {
                    conv_port::NEXT
                } else if l > hi {
                    conv_port::PREV
                } else {
                    conv_port::CORE
                }
            }
        }
    }
}

impl RouteOracle for SlOracle {
    fn route(
        &self,
        router: u32,
        _in_port: u8,
        _in_vc: u8,
        pkt: &PacketHeader,
        _rng: &mut SplitMix64,
    ) -> RouteChoice {
        let p = &self.p;
        let (w, c, local) = p.router_location(router);
        let obj = self.objective(w, c, pkt);

        if p.local_is_core(local) {
            let (x, y) = (local % p.m, local / p.m);
            let class = self.vc_class(w, c, pkt);
            let out_port = match self.scheme {
                VcScheme::Baseline => self.route_core_xy(w, c, x, y, obj),
                VcScheme::Reduced => self.route_core_reduced(w, c, x, y, obj, class),
            };
            // Mesh/converter/ejection hops stay in (w, c).
            return RouteChoice {
                out_port,
                out_vc: self.vc(class, pkt),
            };
        }

        // Converter.
        let label = local - p.m * p.m;
        let out_port = match self.scheme {
            VcScheme::Baseline => self.route_conv_xy(label, obj),
            VcScheme::Reduced => self.route_conv_reduced(label, obj),
        };
        let out_vc = if out_port == conv_port::EXT {
            // Crossing to another C-group (and possibly W-group): class of
            // the downstream side.
            let (w2, c2) = match p.port_role(c, label) {
                PortRole::Local(peer) => (w, peer),
                PortRole::Global(_) => {
                    let q = p.wgroup_global_port(c, label - c);
                    let (v, _) = p
                        .global_peer(w, q)
                        .expect("routing chose an unwired global port");
                    (v, {
                        // Downstream C-group of the peer's paired port.
                        let (_, qb) = p.global_peer(w, q).unwrap();
                        qb / p.h()
                    })
                }
            };
            self.vc(self.vc_class(w2, c2, pkt), pkt)
        } else {
            self.vc(self.vc_class(w, c, pkt), pkt)
        };
        RouteChoice { out_port, out_vc }
    }

    fn initial_vc(&self, pkt: &PacketHeader) -> u8 {
        self.vc(0, pkt)
    }

    fn num_vcs(&self) -> u8 {
        let classes = match (self.mode, self.scheme) {
            (RouteMode::Minimal, VcScheme::Baseline) => 4,
            (RouteMode::Valiant, VcScheme::Baseline) => 6,
            (RouteMode::Minimal, VcScheme::Reduced) => 3,
            (RouteMode::Valiant, VcScheme::Reduced) => 4,
        };
        classes * self.spread
    }

    fn tag_packet(&self, pkt: &mut PacketHeader, rng: &mut SplitMix64) {
        if self.mode != RouteMode::Valiant {
            return;
        }
        let ws = self.p.wgroup_of_endpoint(pkt.src);
        let wd = self.p.wgroup_of_endpoint(pkt.dst);
        if ws == wd || self.p.wgroups < 3 {
            return;
        }
        let mut w = rng.next_below(self.p.wgroups as u64 - 2) as u32;
        for excl in [ws.min(wd), ws.max(wd)] {
            if w >= excl {
                w += 1;
            }
        }
        pkt.inter_w = w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SlParams {
        SlParams::radix16().with_wgroups(5)
    }

    fn hdr(p: &SlParams, src: (u32, u32, u32, u32), dst: (u32, u32, u32, u32)) -> PacketHeader {
        PacketHeader {
            id: 42,
            src: p.endpoint_of(src.0, src.1, src.2, src.3),
            dst: p.endpoint_of(dst.0, dst.1, dst.2, dst.3),
            inter_w: NO_INTERMEDIATE,
            created: 0,
            len: 4,
        }
    }

    #[test]
    fn vc_counts_match_paper() {
        // The paper's VC counts are deadlock classes (spread = 1); the
        // default spread doubles each class for head-of-line relief.
        let p = params();
        assert_eq!(SlOracle::minimal(&p).with_spread(1).num_vcs(), 4);
        assert_eq!(SlOracle::valiant(&p).with_spread(1).num_vcs(), 6);
        assert_eq!(
            SlOracle::new(&p, RouteMode::Minimal, VcScheme::Reduced)
                .with_spread(1)
                .num_vcs(),
            3
        );
        assert_eq!(
            SlOracle::new(&p, RouteMode::Valiant, VcScheme::Reduced)
                .with_spread(1)
                .num_vcs(),
            4
        );
        assert_eq!(SlOracle::minimal(&p).num_vcs(), 8);
    }

    #[test]
    fn baseline_vc_classes_are_monotone_over_segments() {
        let p = params();
        let o = SlOracle::minimal(&p);
        let pkt = hdr(&p, (0, 1, 0, 0), (3, 4, 2, 2));
        // Source C-group.
        assert_eq!(o.vc_class(0, 1, &pkt), 0);
        // Another C-group of the source W-group.
        assert_eq!(o.vc_class(0, 5, &pkt), 1);
        // Non-destination C-group of the dest W-group.
        assert_eq!(o.vc_class(3, 0, &pkt), 2);
        // Destination C-group.
        assert_eq!(o.vc_class(3, 4, &pkt), 3);
    }

    #[test]
    fn reduced_vc_classes_merge_dest_wgroup() {
        let p = params();
        let o = SlOracle::new(&p, RouteMode::Minimal, VcScheme::Reduced);
        let pkt = hdr(&p, (0, 1, 0, 0), (3, 4, 2, 2));
        assert_eq!(o.vc_class(0, 1, &pkt), 0);
        assert_eq!(o.vc_class(0, 5, &pkt), 1);
        assert_eq!(o.vc_class(3, 0, &pkt), 2);
        assert_eq!(o.vc_class(3, 4, &pkt), 2);
    }

    #[test]
    fn local_traffic_stays_in_low_classes() {
        let p = params();
        let o = SlOracle::minimal(&p);
        let pkt = hdr(&p, (2, 1, 0, 0), (2, 6, 3, 3));
        assert_eq!(o.vc_class(2, 1, &pkt), 0);
        // Destination C-group of same-W traffic: class 3 (baseline).
        assert_eq!(o.vc_class(2, 6, &pkt), 3);
    }

    #[test]
    fn objective_seeks_global_exit_cgroup() {
        let p = params();
        let o = SlOracle::minimal(&p);
        let pkt = hdr(&p, (0, 0, 0, 0), (3, 0, 0, 0));
        // In W0 heading to W3: objective must be an Exit.
        match o.objective(0, 0, &pkt) {
            Objective::Exit(_) => {}
            other => panic!("expected Exit, got {other:?}"),
        }
        // In the destination C-group: objective is the core.
        assert_eq!(o.objective(3, 0, &pkt), Objective::Core(0, 0));
    }

    #[test]
    fn global_exit_reaches_the_target() {
        let p = params();
        let o = SlOracle::minimal(&p);
        for target in 1..5u32 {
            let pkt = hdr(&p, (0, 0, 0, 0), (target, 0, 0, 0));
            let (cb, label) = o.global_exit(0, target, &pkt);
            let q = p.wgroup_global_port(cb, label - cb);
            let (v, _) = p.global_peer(0, q).unwrap();
            assert_eq!(v, target);
            // Label really is a global port of cb.
            assert!(matches!(p.port_role(cb, label), PortRole::Global(_)));
        }
    }

    #[test]
    fn reduced_conv_routing_walks_toward_dominating_entry() {
        let p = params(); // m = 4, k = 12
        let o = SlOracle::new(&p, RouteMode::Minimal, VcScheme::Reduced);
        // Dest core (2, 1): entry range [2, 2(3)−1] = [2, 5].
        assert_eq!(
            o.route_conv_reduced(0, Objective::Core(2, 1)),
            conv_port::NEXT
        );
        assert_eq!(
            o.route_conv_reduced(2, Objective::Core(2, 1)),
            conv_port::CORE
        );
        assert_eq!(
            o.route_conv_reduced(5, Objective::Core(2, 1)),
            conv_port::CORE
        );
        assert_eq!(
            o.route_conv_reduced(6, Objective::Core(2, 1)),
            conv_port::PREV
        );
        assert_eq!(
            o.route_conv_reduced(11, Objective::Core(2, 1)),
            conv_port::PREV
        );
    }

    #[test]
    fn reduced_requires_h_at_least_m() {
        // ab = 12 on m=4 gives h = 1 < m: must panic.
        let p = SlParams {
            a: 6,
            b: 2,
            m: 4,
            chiplet: 2,
            wgroups: 1,
            mesh_width: 1,
            nodes_per_chip: 4.0,
        };
        let r =
            std::panic::catch_unwind(|| SlOracle::new(&p, RouteMode::Minimal, VcScheme::Reduced));
        assert!(r.is_err());
    }

    #[test]
    fn valiant_tags_avoid_src_and_dst() {
        let p = params();
        let o = SlOracle::valiant(&p);
        let mut rng = SplitMix64::new(9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            let mut pkt = hdr(&p, (1, 0, 0, 0), (4, 0, 0, 0));
            o.tag_packet(&mut pkt, &mut rng);
            assert!(pkt.inter_w != 1 && pkt.inter_w != 4);
            assert!(pkt.inter_w < 5);
            seen.insert(pkt.inter_w);
        }
        assert_eq!(seen.len(), 3, "all intermediate W-groups should appear");
    }
}
