//! Routing on the switch-based Dragonfly baseline (Kim et al. 2008).
//!
//! Minimal routing uses 2 VCs: VC 0 in the source group, VC 1 from the
//! global hop onward. Valiant routing uses 3 VCs: VC 0 source group, VC 1
//! intermediate group, VC 2 destination group. The VC is re-derived at
//! every hop from the packet header and the downstream switch's group, so
//! no per-packet state is needed.

use crate::RouteMode;
use wsdf_sim::{flit::NO_INTERMEDIATE, PacketHeader, RouteChoice, RouteOracle, SplitMix64};
use wsdf_topo::{SwParams, SwitchFabric};

/// Routing oracle for [`SwitchFabric`].
///
/// `spread` sub-VCs per deadlock class act as virtual output queues inside
/// the ideal single-router switches: the deadlock argument only needs the
/// class ordering (2 classes minimal, 3 Valiant), while the sub-VC (chosen
/// by packet-id hash) removes head-of-line blocking that a literal one-VC-
/// per-class input-queued crossbar would add — the paper models switches
/// as *ideal* high-radix routers.
#[derive(Debug, Clone)]
pub struct SwOracle {
    p: SwParams,
    mode: RouteMode,
    spread: u8,
}

/// Default sub-VCs per class (see [`SwOracle`]).
const DEFAULT_SPREAD: u8 = 8;

impl SwOracle {
    /// Minimal-routing oracle.
    pub fn minimal(p: &SwParams) -> Self {
        SwOracle {
            p: *p,
            mode: RouteMode::Minimal,
            spread: DEFAULT_SPREAD,
        }
    }

    /// Valiant (non-minimal) oracle.
    pub fn valiant(p: &SwParams) -> Self {
        SwOracle {
            p: *p,
            mode: RouteMode::Valiant,
            spread: DEFAULT_SPREAD,
        }
    }

    /// Override the sub-VC spread (1 = literal Kim VC counts).
    pub fn with_spread(mut self, spread: u8) -> Self {
        assert!(spread >= 1);
        self.spread = spread;
        self
    }

    /// Concrete VC for a class: class-major, hash-spread within.
    fn vc(&self, class: u8, pkt: &PacketHeader) -> u8 {
        let h = (SplitMix64::new(pkt.id ^ 0x51C0).next_u64() % self.spread as u64) as u8;
        class * self.spread + h
    }

    /// The group a packet currently heads for: the intermediate group while
    /// misrouting, the destination group afterwards.
    fn target_group(&self, g: u32, pkt: &PacketHeader) -> u32 {
        let gd = self.p.group_of_endpoint(pkt.dst);
        if g == gd {
            gd
        } else if pkt.inter_w != NO_INTERMEDIATE && g != pkt.inter_w {
            pkt.inter_w
        } else {
            gd
        }
    }

    /// Exit switch index and its global-port `j` toward `target` from group
    /// `g`, choosing among trunked ports by packet-id hash.
    fn exit_toward(&self, g: u32, target: u32, pkt: &PacketHeader) -> (u32, u32) {
        let gn = self.p.groups;
        let ports = self.p.switches_per_group() * self.p.globals;
        let off = (target + gn - g - 1) % gn;
        debug_assert!(off < gn - 1, "target_group == g");
        // Valid trunks: q = off + t(gn-1) < ports and paired.
        let mut trunks = 0;
        let mut q = off;
        while q < ports {
            if self.p.global_peer(g, q).is_some() {
                trunks += 1;
            }
            q += gn - 1;
        }
        debug_assert!(trunks > 0, "palmtree must keep groups all-to-all");
        let pick = (SplitMix64::new(pkt.id).next_u64() % trunks as u64) as u32;
        let mut seen = 0;
        let mut q = off;
        loop {
            if self.p.global_peer(g, q).is_some() {
                if seen == pick {
                    break;
                }
                seen += 1;
            }
            q += gn - 1;
        }
        (q / self.p.globals, q % self.p.globals)
    }

    /// VC class of a packet at group `g` (downstream location).
    fn vc_class(&self, g: u32, pkt: &PacketHeader) -> u8 {
        let gs = self.p.group_of_endpoint(pkt.src);
        let gd = self.p.group_of_endpoint(pkt.dst);
        match self.mode {
            RouteMode::Minimal => u8::from(g != gs),
            RouteMode::Valiant => {
                if g == gs && g != gd {
                    0
                } else if g == gd {
                    2
                } else if pkt.inter_w != NO_INTERMEDIATE && g == pkt.inter_w {
                    1
                } else {
                    // Source group of intra-group traffic.
                    0
                }
            }
        }
    }
}

impl RouteOracle for SwOracle {
    fn route(
        &self,
        router: u32,
        _in_port: u8,
        _in_vc: u8,
        pkt: &PacketHeader,
        _rng: &mut SplitMix64,
    ) -> RouteChoice {
        let p = &self.p;
        let (g, i) = p.switch_location(router);
        let (gd, id, td) = p.endpoint_location(pkt.dst);
        if g == gd {
            if i == id {
                // Eject.
                return RouteChoice {
                    out_port: SwitchFabric::terminal_port(p, td),
                    out_vc: self.vc(self.vc_class(g, pkt), pkt),
                };
            }
            // Local hop to the destination switch.
            return RouteChoice {
                out_port: SwitchFabric::local_port(p, i, id),
                out_vc: self.vc(self.vc_class(gd, pkt), pkt),
            };
        }
        let target = self.target_group(g, pkt);
        let (ib, j) = self.exit_toward(g, target, pkt);
        if i == ib {
            // Global hop: downstream group is `target`.
            RouteChoice {
                out_port: SwitchFabric::global_port(p, j),
                out_vc: self.vc(self.vc_class(target, pkt), pkt),
            }
        } else {
            // Local hop toward the exit switch (stays in group g).
            RouteChoice {
                out_port: SwitchFabric::local_port(p, i, ib),
                out_vc: self.vc(self.vc_class(g, pkt), pkt),
            }
        }
    }

    fn initial_vc(&self, pkt: &PacketHeader) -> u8 {
        self.vc(0, pkt)
    }

    fn num_vcs(&self) -> u8 {
        let classes = match self.mode {
            RouteMode::Minimal => 2,
            RouteMode::Valiant => 3,
        };
        classes * self.spread
    }

    fn tag_packet(&self, pkt: &mut PacketHeader, rng: &mut SplitMix64) {
        if self.mode != RouteMode::Valiant {
            return;
        }
        let gs = self.p.group_of_endpoint(pkt.src);
        let gd = self.p.group_of_endpoint(pkt.dst);
        if gs == gd || self.p.groups < 3 {
            return;
        }
        // Uniform over groups other than gs and gd.
        let mut g = rng.next_below(self.p.groups as u64 - 2) as u32;
        for excl in [gs.min(gd), gs.max(gd)] {
            if g >= excl {
                g += 1;
            }
        }
        pkt.inter_w = g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr(src: u32, dst: u32) -> PacketHeader {
        PacketHeader {
            id: 7,
            src,
            dst,
            inter_w: NO_INTERMEDIATE,
            created: 0,
            len: 4,
        }
    }

    #[test]
    fn vc_counts_are_classes_times_spread() {
        let p = SwParams::radix16();
        assert_eq!(SwOracle::minimal(&p).with_spread(1).num_vcs(), 2);
        assert_eq!(SwOracle::valiant(&p).with_spread(1).num_vcs(), 3);
        assert_eq!(SwOracle::minimal(&p).num_vcs(), 16);
        assert_eq!(SwOracle::valiant(&p).num_vcs(), 24);
    }

    #[test]
    fn sub_vcs_stay_inside_their_class() {
        let p = SwParams::radix16();
        let o = SwOracle::minimal(&p);
        for id in 0..64u64 {
            let mut pkt = hdr(0, p.endpoint_of(3, 0, 0));
            pkt.id = id;
            let vc0 = o.vc(0, &pkt);
            let vc1 = o.vc(1, &pkt);
            assert!(vc0 < 8, "class-0 sub-VC {vc0} out of band");
            assert!((8..16).contains(&vc1), "class-1 sub-VC {vc1} out of band");
        }
    }

    #[test]
    fn intra_switch_ejects() {
        let p = SwParams::radix16();
        let o = SwOracle::minimal(&p);
        let mut rng = SplitMix64::new(0);
        // src and dst on switch (0,0): terminals 0..4 → endpoints 0..4.
        let c = o.route(0, 0, 0, &hdr(0, 3), &mut rng);
        assert_eq!(c.out_port, 3);
    }

    #[test]
    fn intra_group_takes_one_local_hop() {
        let p = SwParams::radix16();
        let o = SwOracle::minimal(&p);
        let mut rng = SplitMix64::new(0);
        // dst endpoint on switch (0,2).
        let dst = p.endpoint_of(0, 2, 1);
        let c = o.route(p.switch_router(0, 0), 0, 0, &hdr(0, dst), &mut rng);
        assert_eq!(c.out_port, SwitchFabric::local_port(&p, 0, 2));
        // Intra-group traffic never leaves the source group: class 0 (Kim's
        // scheme only increments the VC after the global hop).
        assert!(c.out_vc < 8, "class-0 band");
    }

    #[test]
    fn valiant_tags_inter_group_packets_only() {
        let p = SwParams::radix16();
        let o = SwOracle::valiant(&p);
        let mut rng = SplitMix64::new(5);
        // Intra-group: no tag.
        let mut pkt = hdr(0, p.endpoint_of(0, 3, 0));
        o.tag_packet(&mut pkt, &mut rng);
        assert_eq!(pkt.inter_w, NO_INTERMEDIATE);
        // Inter-group: tagged, never gs or gd.
        for _ in 0..200 {
            let mut pkt = hdr(0, p.endpoint_of(7, 0, 0));
            o.tag_packet(&mut pkt, &mut rng);
            assert_ne!(pkt.inter_w, NO_INTERMEDIATE);
            assert_ne!(pkt.inter_w, 0);
            assert_ne!(pkt.inter_w, 7);
            assert!(pkt.inter_w < p.groups);
        }
    }

    #[test]
    fn trunk_selection_is_deterministic_per_packet() {
        let p = SwParams::radix16().with_groups(5);
        let o = SwOracle::minimal(&p);
        let pkt = hdr(0, p.endpoint_of(3, 0, 0));
        let (a1, b1) = o.exit_toward(0, 3, &pkt);
        let (a2, b2) = o.exit_toward(0, 3, &pkt);
        assert_eq!((a1, b1), (a2, b2));
        // And the chosen port really reaches group 3.
        let q = a1 * p.globals + b1;
        let (v, _) = p.global_peer(0, q).unwrap();
        assert_eq!(v, 3);
    }

    #[test]
    fn trunks_spread_across_packet_ids() {
        // At 5 groups there are 40/4 = 10 trunks per peer; different packet
        // ids should not all pick the same one.
        let p = SwParams::radix16().with_groups(5);
        let o = SwOracle::minimal(&p);
        let mut picks = std::collections::HashSet::new();
        for id in 0..64 {
            let mut pkt = hdr(0, p.endpoint_of(3, 0, 0));
            pkt.id = id;
            picks.insert(o.exit_toward(0, 3, &pkt));
        }
        assert!(picks.len() > 3, "trunk selection not spreading: {picks:?}");
    }
}
