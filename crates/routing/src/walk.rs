//! Pure route walking: follow an oracle's decisions over a built network
//! without running the simulator.
//!
//! Used by tests and the analysis harness for reachability, hop-count
//! (diameter, Eq. 7), VC-monotonicity and up*/down*-legality checks, and by
//! the energy model to cross-check simulated hop counts.

use wsdf_sim::{
    flit::NO_INTERMEDIATE, ChannelClass, NetworkDesc, PacketHeader, RouteOracle, SplitMix64,
    Terminus,
};

/// Static (router, port) → destination map built from a [`NetworkDesc`].
#[derive(Debug, Clone)]
pub struct PortMap {
    /// Per router, per port: outgoing channel destination and class.
    out: Vec<Vec<Option<(Terminus, ChannelClass, u32)>>>,
    /// Injection side: endpoint → (router, port).
    inject: Vec<(u32, u8)>,
}

impl PortMap {
    /// Build the map.
    pub fn new(net: &NetworkDesc) -> Self {
        let mut out: Vec<Vec<Option<(Terminus, ChannelClass, u32)>>> = net
            .routers
            .iter()
            .map(|r| vec![None; r.ports as usize])
            .collect();
        let mut inject = vec![(u32::MAX, 0u8); net.num_endpoints()];
        for ch in &net.channels {
            match ch.src {
                Terminus::Router { router, port } => {
                    out[router as usize][port as usize] = Some((ch.dst, ch.class, ch.latency));
                }
                Terminus::Endpoint { endpoint } => {
                    if let Terminus::Router { router, port } = ch.dst {
                        inject[endpoint as usize] = (router, port);
                    }
                }
            }
        }
        PortMap { out, inject }
    }

    /// Destination of (router, port), if wired.
    pub fn follow(&self, router: u32, port: u8) -> Option<(Terminus, ChannelClass, u32)> {
        self.out[router as usize][port as usize]
    }

    /// Router and port an endpoint injects into.
    pub fn injection(&self, endpoint: u32) -> (u32, u8) {
        self.inject[endpoint as usize]
    }
}

/// One hop of a walked route.
#[derive(Debug, Clone, Copy)]
pub struct Hop {
    /// Router the hop leaves from.
    pub router: u32,
    /// Output port taken.
    pub out_port: u8,
    /// VC requested for the downstream buffer.
    pub out_vc: u8,
    /// Class of the traversed channel.
    pub class: ChannelClass,
    /// Channel latency in cycles.
    pub latency: u32,
}

/// A fully walked route.
#[derive(Debug, Clone)]
pub struct RouteTrace {
    /// Hops in order (excluding the injection hop, including ejection).
    pub hops: Vec<Hop>,
}

impl RouteTrace {
    /// Total router-to-router hops (excluding ejection).
    pub fn network_hops(&self) -> usize {
        self.hops
            .iter()
            .filter(|h| h.class != ChannelClass::Ejection)
            .count()
    }

    /// Hops of a given class.
    pub fn hops_of(&self, class: ChannelClass) -> usize {
        self.hops.iter().filter(|h| h.class == class).count()
    }

    /// Sum of channel latencies along the route (zero-load wire latency).
    pub fn wire_latency(&self) -> u64 {
        self.hops.iter().map(|h| h.latency as u64).sum()
    }

    /// The sequence of VCs requested on non-ejection hops.
    pub fn vcs(&self) -> Vec<u8> {
        self.hops
            .iter()
            .filter(|h| h.class != ChannelClass::Ejection)
            .map(|h| h.out_vc)
            .collect()
    }
}

/// Walks routes by repeatedly querying an oracle.
pub struct Walker<'a> {
    map: &'a PortMap,
    oracle: &'a dyn RouteOracle,
    /// Hop budget before declaring a livelock.
    pub max_hops: usize,
}

impl<'a> Walker<'a> {
    /// New walker with a 4096-hop budget.
    pub fn new(map: &'a PortMap, oracle: &'a dyn RouteOracle) -> Self {
        Walker {
            map,
            oracle,
            max_hops: 4096,
        }
    }

    /// Walk a packet from endpoint `src` to endpoint `dst`; `inter_w`
    /// pre-tags Valiant packets (use [`RouteOracle::tag_packet`] upstream
    /// for random tagging). Returns an error string on livelock, unwired
    /// ports, or misdelivery.
    pub fn walk(&self, src: u32, dst: u32, inter_w: u32) -> Result<RouteTrace, String> {
        let pkt = PacketHeader {
            id: (src as u64) << 32 | dst as u64,
            src,
            dst,
            inter_w,
            created: 0,
            len: 4,
        };
        let mut rng = SplitMix64::for_agent(7, src as u64);
        let (mut router, mut in_port) = self.map.injection(src);
        if router == u32::MAX {
            return Err(format!("endpoint {src} has no injection channel"));
        }
        let mut hops = Vec::new();
        let mut in_vc = self.oracle.initial_vc(&pkt);
        for _ in 0..self.max_hops {
            let choice = self.oracle.route(router, in_port, in_vc, &pkt, &mut rng);
            let Some((to, class, latency)) = self.map.follow(router, choice.out_port) else {
                return Err(format!(
                    "router {router} port {} is unwired (src {src} → dst {dst})",
                    choice.out_port
                ));
            };
            hops.push(Hop {
                router,
                out_port: choice.out_port,
                out_vc: choice.out_vc,
                class,
                latency,
            });
            match to {
                Terminus::Endpoint { endpoint } => {
                    if endpoint != dst {
                        return Err(format!("misdelivered: {src} → {dst} ejected at {endpoint}"));
                    }
                    return Ok(RouteTrace { hops });
                }
                Terminus::Router {
                    router: r2,
                    port: p2,
                } => {
                    router = r2;
                    in_port = p2;
                    in_vc = choice.out_vc;
                }
            }
        }
        Err(format!(
            "route {src} → {dst} exceeded {} hops (livelock?)",
            self.max_hops
        ))
    }

    /// Walk and also assert the VC sequence never decreases within the
    /// phase order implied by `class_rank` (maps VC → phase rank).
    pub fn walk_checking_vcs(
        &self,
        src: u32,
        dst: u32,
        inter_w: u32,
        class_rank: &dyn Fn(u8) -> u8,
    ) -> Result<RouteTrace, String> {
        let trace = self.walk(src, dst, inter_w)?;
        let vcs = trace.vcs();
        for w in vcs.windows(2) {
            if class_rank(w[1]) < class_rank(w[0]) {
                return Err(format!(
                    "VC phase went backwards ({} → {}) on route {src} → {dst}: {vcs:?}",
                    w[0], w[1]
                ));
            }
        }
        Ok(trace)
    }
}

/// Walk every (src, dst) pair. Returns the maximum network-hop count (the
/// measured diameter) or the first error. Only feasible for small fabrics.
pub fn all_pairs_diameter(
    map: &PortMap,
    oracle: &dyn RouteOracle,
    endpoints: u32,
) -> Result<usize, String> {
    let walker = Walker::new(map, oracle);
    let mut max = 0;
    for s in 0..endpoints {
        for d in 0..endpoints {
            if s == d {
                continue;
            }
            let t = walker.walk(s, d, NO_INTERMEDIATE)?;
            max = max.max(t.network_hops());
        }
    }
    Ok(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::MeshOracle;
    use wsdf_topo::single_mesh;

    #[test]
    fn walk_mesh_routes() {
        let f = single_mesh(4, 2, 1);
        let map = PortMap::new(&f.net);
        let o = MeshOracle::new(4);
        let w = Walker::new(&map, &o);
        let t = w.walk(0, 15, NO_INTERMEDIATE).unwrap();
        // (0,0) → (3,3): 6 mesh hops + ejection.
        assert_eq!(t.network_hops(), 6);
        assert_eq!(t.hops.len(), 7);
        assert_eq!(t.hops_of(ChannelClass::Ejection), 1);
    }

    #[test]
    fn mesh_diameter_matches_formula() {
        let f = single_mesh(4, 2, 1);
        let map = PortMap::new(&f.net);
        let o = MeshOracle::new(4);
        let d = all_pairs_diameter(&map, &o, 16).unwrap();
        assert_eq!(d, 2 * (4 - 1));
    }

    #[test]
    fn misdelivery_is_caught() {
        // An oracle that always ejects at port EP regardless of dst.
        struct Bad;
        impl RouteOracle for Bad {
            fn route(
                &self,
                _: u32,
                _: u8,
                _: u8,
                _: &PacketHeader,
                _: &mut SplitMix64,
            ) -> wsdf_sim::RouteChoice {
                wsdf_sim::RouteChoice {
                    out_port: wsdf_topo::core_port::EP,
                    out_vc: 0,
                }
            }
            fn initial_vc(&self, _: &PacketHeader) -> u8 {
                0
            }
            fn num_vcs(&self) -> u8 {
                1
            }
        }
        let f = single_mesh(3, 1, 1);
        let map = PortMap::new(&f.net);
        let w = Walker::new(&map, &Bad);
        let err = w.walk(0, 5, NO_INTERMEDIATE).unwrap_err();
        assert!(err.contains("misdelivered"), "{err}");
    }
}
