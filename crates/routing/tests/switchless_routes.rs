//! Whole-fabric routing correctness for the switch-less Dragonfly:
//! reachability of every (src, dst) pair, hop structure against Eq. (7),
//! VC-phase monotonicity, and up*/down* legality of the Reduced scheme.

use wsdf_routing::{PortMap, RouteMode, SlOracle, VcScheme, Walker};
use wsdf_sim::flit::NO_INTERMEDIATE;
use wsdf_sim::ChannelClass;
use wsdf_topo::{SlParams, SwitchlessFabric};

/// A small but fully featured config: m=4 (k=12), ab=4, h=9, 5 W-groups.
fn small() -> (SlParams, SwitchlessFabric) {
    let p = SlParams {
        a: 2,
        b: 2,
        m: 4,
        chiplet: 2,
        wgroups: 5,
        mesh_width: 1,
        nodes_per_chip: 4.0,
    };
    let f = SwitchlessFabric::build(&p);
    (p, f)
}

/// The paper's radix-16 config at reduced W-group count.
fn radix16_partial(wgroups: u32) -> (SlParams, SwitchlessFabric) {
    let p = SlParams::radix16().with_wgroups(wgroups);
    let f = SwitchlessFabric::build(&p);
    (p, f)
}

#[test]
fn all_pairs_reachable_minimal_baseline() {
    let (p, f) = small();
    let map = PortMap::new(&f.net);
    let o = SlOracle::minimal(&p);
    let walker = Walker::new(&map, &o);
    let n = p.num_endpoints();
    for s in (0..n).step_by(7) {
        for d in 0..n {
            if s == d {
                continue;
            }
            walker
                .walk(s, d, NO_INTERMEDIATE)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn all_pairs_reachable_minimal_reduced() {
    let (p, f) = small();
    let map = PortMap::new(&f.net);
    let o = SlOracle::new(&p, RouteMode::Minimal, VcScheme::Reduced);
    let walker = Walker::new(&map, &o);
    let n = p.num_endpoints();
    for s in (0..n).step_by(7) {
        for d in 0..n {
            if s == d {
                continue;
            }
            walker
                .walk(s, d, NO_INTERMEDIATE)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn all_pairs_reachable_valiant_both_schemes() {
    let (p, f) = small();
    let map = PortMap::new(&f.net);
    for scheme in [VcScheme::Baseline, VcScheme::Reduced] {
        let o = SlOracle::new(&p, RouteMode::Valiant, scheme);
        let walker = Walker::new(&map, &o);
        let n = p.num_endpoints();
        // Explicitly misroute through every possible intermediate W-group.
        for s in (0..n).step_by(31) {
            for d in (0..n).step_by(13) {
                if s == d {
                    continue;
                }
                let ws = p.wgroup_of_endpoint(s);
                let wd = p.wgroup_of_endpoint(d);
                for inter in 0..p.wgroups {
                    if inter == ws || inter == wd || ws == wd {
                        continue;
                    }
                    walker
                        .walk(s, d, inter)
                        .unwrap_or_else(|e| panic!("[{scheme:?}] {e}"));
                }
            }
        }
    }
}

#[test]
fn minimal_route_has_dragonfly_hop_structure() {
    let (p, f) = radix16_partial(5);
    let map = PortMap::new(&f.net);
    let o = SlOracle::minimal(&p);
    let walker = Walker::new(&map, &o);
    // Pick a worst-position pair: distinct W-groups.
    let src = p.endpoint_of(0, 0, 1, 1);
    let dst = p.endpoint_of(3, 7, 2, 2);
    let t = walker.walk(src, dst, NO_INTERMEDIATE).unwrap();
    // Exactly one global hop, at most two local hops (Dragonfly diameter).
    assert_eq!(t.hops_of(ChannelClass::LongReachGlobal), 1);
    assert!(t.hops_of(ChannelClass::LongReachLocal) <= 2);
    // Eq. (7): intra-C-group hops bounded by (8m − 2) SR/on-chip hops.
    let sr = t.hops_of(ChannelClass::ShortReach) + t.hops_of(ChannelClass::OnChip);
    assert!(
        sr <= (8 * p.m - 2) as usize,
        "SR hops {sr} exceed Eq. (7) bound {}",
        8 * p.m - 2
    );
}

#[test]
fn diameter_bound_eq7_holds_over_sampled_pairs() {
    let (p, f) = radix16_partial(5);
    let map = PortMap::new(&f.net);
    let o = SlOracle::minimal(&p);
    let walker = Walker::new(&map, &o);
    let n = p.num_endpoints();
    let bound_sr = (8 * p.m - 2) as usize;
    for s in (0..n).step_by(97) {
        for d in (0..n).step_by(41) {
            if s == d {
                continue;
            }
            let t = walker.walk(s, d, NO_INTERMEDIATE).unwrap();
            assert!(t.hops_of(ChannelClass::LongReachGlobal) <= 1);
            assert!(t.hops_of(ChannelClass::LongReachLocal) <= 2);
            let sr = t.hops_of(ChannelClass::ShortReach) + t.hops_of(ChannelClass::OnChip);
            assert!(sr <= bound_sr, "{s}→{d}: {sr} SR hops > {bound_sr}");
        }
    }
}

#[test]
fn vc_phases_never_regress() {
    let (p, f) = small();
    let map = PortMap::new(&f.net);
    // Baseline: the deadlock class (VC / spread, spread = 2) is the phase.
    let o = SlOracle::minimal(&p);
    let walker = Walker::new(&map, &o);
    let n = p.num_endpoints();
    for s in (0..n).step_by(13) {
        for d in (0..n).step_by(7) {
            if s == d {
                continue;
            }
            walker
                .walk_checking_vcs(s, d, NO_INTERMEDIATE, &|vc| vc / 2)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
    // Reduced: phase order of classes is 0 → 1 → 3 → 2 (class 3 is the
    // intermediate W-group, class 2 the destination W-group).
    let o = SlOracle::new(&p, RouteMode::Valiant, VcScheme::Reduced);
    let walker = Walker::new(&map, &o);
    let rank = |vc: u8| match vc / 2 {
        0 => 0,
        1 => 1,
        3 => 2,
        2 => 3,
        v => panic!("unexpected VC class {v}"),
    };
    for s in (0..n).step_by(29) {
        for d in (0..n).step_by(17) {
            if s == d {
                continue;
            }
            let ws = p.wgroup_of_endpoint(s);
            let wd = p.wgroup_of_endpoint(d);
            let inter = if ws == wd {
                NO_INTERMEDIATE
            } else {
                (0..p.wgroups).find(|&w| w != ws && w != wd).unwrap()
            };
            walker
                .walk_checking_vcs(s, d, inter, &rank)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

/// Up*/down* order value of a router inside its W-group (see DESIGN.md):
/// C-group-major, converters above cores, cores row-major.
fn updown_value(p: &SlParams, router: u32) -> (u32, u64) {
    let (w, c, local) = p.router_location(router);
    let block = (p.m * p.m + p.k() + 10) as u64;
    (w, c as u64 * block + local as u64)
}

#[test]
fn reduced_routes_are_updown_legal() {
    let (p, f) = small();
    let map = PortMap::new(&f.net);
    for mode in [RouteMode::Minimal, RouteMode::Valiant] {
        let o = SlOracle::new(&p, mode, VcScheme::Reduced);
        let walker = Walker::new(&map, &o);
        let n = p.num_endpoints();
        for s in (0..n).step_by(11) {
            for d in (0..n).step_by(5) {
                if s == d {
                    continue;
                }
                let ws = p.wgroup_of_endpoint(s);
                let wd = p.wgroup_of_endpoint(d);
                let inter = if mode == RouteMode::Valiant && ws != wd {
                    (0..p.wgroups).find(|&w| w != ws && w != wd).unwrap()
                } else {
                    NO_INTERMEDIATE
                };
                let t = walker.walk(s, d, inter).unwrap_or_else(|e| panic!("{e}"));
                // Within every shared-VC W-group segment (VC 2 or 3), the
                // hop sequence must be up* then down* in the order value.
                let mut phase_down = false;
                let mut prev: Option<(u32, u64)> = None;
                let mut prev_vc = 255u8;
                for h in &t.hops {
                    if h.class == ChannelClass::Ejection {
                        break;
                    }
                    // Deadlock class = VC / spread (spread = 2).
                    let merged = h.out_vc / 2 == 2 || h.out_vc / 2 == 3;
                    if h.out_vc / 2 != prev_vc {
                        // New VC-class segment: reset the phase tracker.
                        phase_down = false;
                        prev = None;
                        prev_vc = h.out_vc / 2;
                    }
                    if !merged {
                        prev = None;
                        continue;
                    }
                    // Intra-W-group channels only (the global channel into
                    // the W-group is a dependency source, not in a cycle).
                    let here = updown_value(&p, h.router);
                    if let Some(prev_v) = prev {
                        if prev_v.0 == here.0 {
                            // Same W-group: direction of the hop prev → here.
                            let up = here.1 > prev_v.1;
                            if up && phase_down {
                                panic!(
                                    "up-after-down on VC class {} route {s}→{d} (inter {inter})",
                                    h.out_vc / 2
                                );
                            }
                            if !up {
                                phase_down = true;
                            }
                        } else {
                            // Crossed a W-group boundary: fresh phase.
                            phase_down = false;
                        }
                    }
                    prev = Some(here);
                }
            }
        }
    }
}

#[test]
fn valiant_visits_intermediate_wgroup() {
    let (p, f) = small();
    let map = PortMap::new(&f.net);
    let o = SlOracle::valiant(&p);
    let walker = Walker::new(&map, &o);
    let src = p.endpoint_of(0, 0, 0, 0);
    let dst = p.endpoint_of(2, 3, 1, 1);
    let t = walker.walk(src, dst, 4).unwrap();
    // Two global hops (to W4, then to W2).
    assert_eq!(t.hops_of(ChannelClass::LongReachGlobal), 2);
    // The route passes through W-group 4.
    let visits_inter = t.hops.iter().any(|h| {
        let (w, _, _) = p.router_location(h.router);
        w == 4
    });
    assert!(visits_inter);
}

#[test]
fn single_wgroup_has_single_local_hop_diameter() {
    // Architecture variation of Sec. III-D1: one fully connected W-group,
    // diameter H_l + (4m − 2) H_sr.
    let p = SlParams::radix16().with_wgroups(1);
    let f = SwitchlessFabric::build(&p);
    let map = PortMap::new(&f.net);
    let o = SlOracle::minimal(&p);
    let walker = Walker::new(&map, &o);
    let n = p.num_endpoints();
    for s in (0..n).step_by(17) {
        for d in (0..n).step_by(3) {
            if s == d {
                continue;
            }
            let t = walker.walk(s, d, NO_INTERMEDIATE).unwrap();
            assert_eq!(t.hops_of(ChannelClass::LongReachGlobal), 0);
            assert!(t.hops_of(ChannelClass::LongReachLocal) <= 1);
            let sr = t.hops_of(ChannelClass::ShortReach) + t.hops_of(ChannelClass::OnChip);
            assert!(sr <= (4 * p.m - 2) as usize);
        }
    }
}

#[test]
fn reduced_paths_are_longer_but_bounded() {
    // The Reduced scheme trades path length for VCs; quantify the bound:
    // chain walks add at most k hops per C-group visited.
    let (p, f) = small();
    let map = PortMap::new(&f.net);
    let base = SlOracle::minimal(&p);
    let redu = SlOracle::new(&p, RouteMode::Minimal, VcScheme::Reduced);
    let wb = Walker::new(&map, &base);
    let wr = Walker::new(&map, &redu);
    let n = p.num_endpoints();
    let mut total_base = 0usize;
    let mut total_red = 0usize;
    for s in (0..n).step_by(23) {
        for d in (0..n).step_by(9) {
            if s == d {
                continue;
            }
            let tb = wb.walk(s, d, NO_INTERMEDIATE).unwrap();
            let tr = wr.walk(s, d, NO_INTERMEDIATE).unwrap();
            total_base += tb.network_hops();
            total_red += tr.network_hops();
            assert!(
                tr.network_hops() <= tb.network_hops() + 4 * p.k() as usize,
                "reduced path unexpectedly long: {s}→{d}"
            );
        }
    }
    assert!(
        total_red >= total_base,
        "reduced paths should not be shorter on average"
    );
}
