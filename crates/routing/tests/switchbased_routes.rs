//! Whole-fabric routing correctness for the switch-based Dragonfly
//! baseline: reachability, Dragonfly hop structure (≤ local, global,
//! local), and Valiant behavior.

use wsdf_routing::{PortMap, SwOracle, Walker};
use wsdf_sim::flit::NO_INTERMEDIATE;
use wsdf_sim::ChannelClass;
use wsdf_topo::{SwParams, SwitchFabric};

fn fabric(groups: u32) -> (SwParams, SwitchFabric) {
    let p = SwParams::radix16().with_groups(groups);
    let f = SwitchFabric::build(&p);
    (p, f)
}

#[test]
fn all_pairs_reachable_minimal() {
    let (p, f) = fabric(5);
    let map = PortMap::new(&f.net);
    let o = SwOracle::minimal(&p);
    let walker = Walker::new(&map, &o);
    let n = p.num_endpoints();
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            walker
                .walk(s, d, NO_INTERMEDIATE)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn minimal_routes_have_dragonfly_structure() {
    let (p, f) = fabric(5);
    let map = PortMap::new(&f.net);
    let o = SwOracle::minimal(&p);
    let walker = Walker::new(&map, &o);
    let n = p.num_endpoints();
    for s in (0..n).step_by(3) {
        for d in (0..n).step_by(5) {
            if s == d {
                continue;
            }
            let t = walker.walk(s, d, NO_INTERMEDIATE).unwrap();
            let gl = t.hops_of(ChannelClass::LongReachGlobal);
            let lo = t.hops_of(ChannelClass::LongReachLocal);
            let gs = p.group_of_endpoint(s);
            let gd = p.group_of_endpoint(d);
            if gs == gd {
                assert_eq!(gl, 0);
                assert!(lo <= 1);
            } else {
                assert_eq!(gl, 1, "{s}→{d}");
                assert!(lo <= 2, "{s}→{d}");
            }
            // Total switch-to-switch hops ≤ 3 (Dragonfly diameter).
            assert!(t.network_hops() <= 3, "{s}→{d}: {}", t.network_hops());
        }
    }
}

#[test]
fn valiant_routes_bounded_and_reach() {
    let (p, f) = fabric(5);
    let map = PortMap::new(&f.net);
    let o = SwOracle::valiant(&p);
    let walker = Walker::new(&map, &o);
    let n = p.num_endpoints();
    for s in (0..n).step_by(7) {
        for d in (0..n).step_by(11) {
            if s == d {
                continue;
            }
            let gs = p.group_of_endpoint(s);
            let gd = p.group_of_endpoint(d);
            if gs == gd {
                continue;
            }
            for inter in 0..p.groups {
                if inter == gs || inter == gd {
                    continue;
                }
                let t = walker.walk(s, d, inter).unwrap();
                assert_eq!(t.hops_of(ChannelClass::LongReachGlobal), 2);
                assert!(t.hops_of(ChannelClass::LongReachLocal) <= 4);
                assert!(t.network_hops() <= 6);
            }
        }
    }
}

#[test]
fn vc_sequence_is_monotone() {
    let (p, f) = fabric(5);
    let map = PortMap::new(&f.net);
    for (oracle, name) in [
        (SwOracle::minimal(&p), "minimal"),
        (SwOracle::valiant(&p), "valiant"),
    ] {
        let walker = Walker::new(&map, &oracle);
        let n = p.num_endpoints();
        for s in (0..n).step_by(13) {
            for d in (0..n).step_by(3) {
                if s == d {
                    continue;
                }
                let gs = p.group_of_endpoint(s);
                let gd = p.group_of_endpoint(d);
                let inter = if name == "valiant" && gs != gd {
                    (0..p.groups).find(|&g| g != gs && g != gd).unwrap()
                } else {
                    NO_INTERMEDIATE
                };
                // VCs are class-major with 8 sub-VCs per class; the phase
                // rank is the class.
                walker
                    .walk_checking_vcs(s, d, inter, &|vc| vc / 8)
                    .unwrap_or_else(|e| panic!("[{name}] {e}"));
            }
        }
    }
}

#[test]
fn full_scale_radix16_spot_check() {
    // Build the full 41-group, 1312-chip system and walk a sample.
    let (p, f) = fabric(SwParams::radix16().max_groups());
    let map = PortMap::new(&f.net);
    let o = SwOracle::minimal(&p);
    let walker = Walker::new(&map, &o);
    let n = p.num_endpoints();
    assert_eq!(n, 1312);
    for s in (0..n).step_by(111) {
        for d in (0..n).step_by(77) {
            if s == d {
                continue;
            }
            let t = walker.walk(s, d, NO_INTERMEDIATE).unwrap();
            assert!(t.network_hops() <= 3);
        }
    }
}
