//! Collective workloads as message dependency DAGs.
//!
//! A [`Workload`] is a list of [`Message`]s plus, per message, the set of
//! predecessor messages that must *fully arrive* (every flit reassembled at
//! the destination) before it may be injected. The closed-loop driver
//! releases messages as their dependencies complete, so the schedule is
//! data-driven exactly like a real collective implementation: step `s+1`
//! of a ring allreduce cannot leave a node before step `s`'s chunk has
//! been received and reduced.
//!
//! Builders for the standard collectives are provided — ring and
//! recursive-doubling **allreduce**, staggered **all-to-all**, binomial
//! **broadcast**/**reduce**, and a multi-stage **pipeline** — and arbitrary
//! DAGs can be assembled with [`Workload::push`]. Messages carry a *phase*
//! tag (e.g. reduce-scatter vs allgather) so reports can attribute time
//! and bandwidth per phase.

use crate::message::{packet_count, MAX_MESSAGES, MAX_PACKETS_PER_MESSAGE};
use wsdf_sim::json::{self, read, Value};

/// One point-to-point message of a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Source endpoint.
    pub src: u32,
    /// Destination endpoint.
    pub dst: u32,
    /// Payload size in flits.
    pub flits: u64,
    /// Index into [`Workload::phases`].
    pub phase: u32,
}

/// A dependency-aware collective workload (a message DAG).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Human-readable workload name ("ring-allreduce", ...).
    pub name: String,
    /// Phase labels, indexed by [`Message::phase`].
    pub phases: Vec<String>,
    msgs: Vec<Message>,
    /// Predecessors per message (indices into `msgs`).
    preds: Vec<Vec<u32>>,
}

impl Workload {
    /// An empty workload (assemble with [`push`](Self::push)).
    pub fn new(name: impl Into<String>) -> Self {
        Workload {
            name: name.into(),
            phases: Vec::new(),
            msgs: Vec::new(),
            preds: Vec::new(),
        }
    }

    /// Add (or find) a phase label, returning its index.
    pub fn phase(&mut self, label: impl Into<String>) -> u32 {
        let label = label.into();
        if let Some(i) = self.phases.iter().position(|p| *p == label) {
            return i as u32;
        }
        self.phases.push(label);
        (self.phases.len() - 1) as u32
    }

    /// Append a message with explicit predecessors; returns its id.
    pub fn push(&mut self, msg: Message, preds: &[u32]) -> u32 {
        let id = self.msgs.len() as u32;
        self.msgs.push(msg);
        self.preds.push(preds.to_vec());
        id
    }

    /// The messages, in id order.
    pub fn messages(&self) -> &[Message] {
        &self.msgs
    }

    /// Predecessor ids of message `m`.
    pub fn preds(&self, m: u32) -> &[u32] {
        &self.preds[m as usize]
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True if the workload has no messages.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Total payload over all messages, in flits.
    pub fn total_flits(&self) -> u64 {
        self.msgs.iter().map(|m| m.flits).sum()
    }

    /// Structural validation: endpoint ids in range, no self-messages, no
    /// zero-length messages, tag space not exceeded, dependencies in range
    /// and acyclic (so the closed-loop run is guaranteed to make progress).
    pub fn validate(&self, endpoints: u32) -> Result<(), String> {
        if self.msgs.len() as u64 > MAX_MESSAGES {
            return Err(format!(
                "{} messages exceed the tag space ({MAX_MESSAGES})",
                self.msgs.len()
            ));
        }
        for (i, m) in self.msgs.iter().enumerate() {
            if m.src >= endpoints || m.dst >= endpoints {
                return Err(format!(
                    "message {i}: {} -> {} out of range ({endpoints} endpoints)",
                    m.src, m.dst
                ));
            }
            if m.src == m.dst {
                return Err(format!("message {i}: self-message at endpoint {}", m.src));
            }
            if m.flits == 0 {
                return Err(format!("message {i}: zero flits"));
            }
            if packet_count(m.flits, 1) > MAX_PACKETS_PER_MESSAGE {
                return Err(format!("message {i}: {} flits exceed tag space", m.flits));
            }
            if m.phase as usize >= self.phases.len() {
                return Err(format!("message {i}: phase {} unlabeled", m.phase));
            }
            for &p in &self.preds[i] {
                if p as usize >= self.msgs.len() {
                    return Err(format!("message {i}: predecessor {p} out of range"));
                }
            }
        }
        // Kahn's algorithm: every message must be reachable from the
        // zero-predecessor frontier, otherwise the DAG has a cycle and the
        // run would starve.
        let mut waiting: Vec<u32> = self.preds.iter().map(|p| p.len() as u32).collect();
        let succs = self.successors();
        let mut frontier: Vec<u32> = (0..self.msgs.len() as u32)
            .filter(|&i| waiting[i as usize] == 0)
            .collect();
        let mut released = 0usize;
        while let Some(m) = frontier.pop() {
            released += 1;
            for &s in &succs[m as usize] {
                waiting[s as usize] -= 1;
                if waiting[s as usize] == 0 {
                    frontier.push(s);
                }
            }
        }
        if released != self.msgs.len() {
            return Err(format!(
                "dependency cycle: only {released} of {} messages can ever run",
                self.msgs.len()
            ));
        }
        Ok(())
    }

    /// Successor lists (inverse of the predecessor lists).
    pub(crate) fn successors(&self) -> Vec<Vec<u32>> {
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); self.msgs.len()];
        for (i, preds) in self.preds.iter().enumerate() {
            for &p in preds {
                succs[p as usize].push(i as u32);
            }
        }
        succs
    }

    /// Canonical one-line JSON form of the full DAG: name, phase labels,
    /// and every message with its predecessor list. Inverse of
    /// [`from_json`](Self::from_json), suitable for digesting.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{{\"name\": \"{}\"", json::escape(&self.name)));
        s.push_str(", \"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\"", json::escape(p)));
        }
        s.push_str("], \"messages\": [");
        for (i, m) in self.msgs.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"src\": {}, \"dst\": {}, \"flits\": {}, \"phase\": {}, \"preds\": [",
                m.src, m.dst, m.flits, m.phase
            ));
            for (j, p) in self.preds[i].iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&p.to_string());
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// Parse an explicit message DAG from JSON at `path`.
    ///
    /// Expects `{"name", "phases": [..], "messages": [{"src", "dst",
    /// "flits", "phase", "preds"?}]}`; `preds` defaults to the empty
    /// list. Structure only — call [`validate`](Self::validate) with the
    /// endpoint count to check ranges and acyclicity.
    pub fn from_json(v: &Value, path: &str) -> Result<Self, String> {
        read::check_keys(v, path, &["name", "phases", "messages"])?;
        let mut wl = Workload::new(read::str_field(v, path, "name")?);
        let phases = read::arr_field(v, path, "phases")?;
        for (i, p) in phases.iter().enumerate() {
            let label = p
                .as_str()
                .ok_or_else(|| format!("{path}.phases[{i}]: expected string"))?;
            wl.phases.push(label.to_string());
        }
        let msgs = read::arr_field(v, path, "messages")?;
        for (i, m) in msgs.iter().enumerate() {
            let mpath = format!("{path}.messages[{i}]");
            read::check_keys(m, &mpath, &["src", "dst", "flits", "phase", "preds"])?;
            let msg = Message {
                src: read::u64_field(m, &mpath, "src")? as u32,
                dst: read::u64_field(m, &mpath, "dst")? as u32,
                flits: read::u64_field(m, &mpath, "flits")?,
                phase: read::u64_field(m, &mpath, "phase")? as u32,
            };
            let preds = if m.get("preds").is_some() {
                read::u32_list(m, &mpath, "preds")?
            } else {
                Vec::new()
            };
            wl.push(msg, &preds);
        }
        Ok(wl)
    }

    // --- Collective builders ------------------------------------------------

    /// Ring allreduce over `participants` (≥ 2 distinct endpoints), each
    /// contributing `data_flits` of payload.
    ///
    /// The textbook bandwidth-optimal schedule: the data is split into
    /// `p` chunks of `⌈data/p⌉` flits; a **reduce-scatter** phase of
    /// `p − 1` steps pipelines partial sums around the ring, then an
    /// **allgather** phase of `p − 1` steps circulates the reduced chunks.
    /// In every step each node sends one chunk to its ring successor, and
    /// a node's step-`s` send depends on having received its predecessor's
    /// step-`s−1` chunk — the dependency structure that makes completion
    /// time `2(p−1) × (chunk latency)` under zero contention.
    pub fn ring_allreduce(participants: &[u32], data_flits: u64) -> Workload {
        let p = participants.len();
        assert!(p >= 2, "ring allreduce needs at least 2 participants");
        let chunk = data_flits.div_ceil(p as u64).max(1);
        let mut wl = Workload::new("ring-allreduce");
        let rs = wl.phase("reduce-scatter");
        let ag = wl.phase("allgather");
        // msg id of (step s, node i) is s*p + i by construction.
        let mid = |s: usize, i: usize| (s * p + i) as u32;
        for s in 0..2 * (p - 1) {
            let phase = if s < p - 1 { rs } else { ag };
            for i in 0..p {
                let msg = Message {
                    src: participants[i],
                    dst: participants[(i + 1) % p],
                    flits: chunk,
                    phase,
                };
                if s == 0 {
                    wl.push(msg, &[]);
                } else {
                    // The chunk node i forwards at step s is the one it
                    // received from its ring predecessor at step s−1.
                    wl.push(msg, &[mid(s - 1, (i + p - 1) % p)]);
                }
            }
        }
        wl
    }

    /// Recursive-doubling allreduce over a power-of-two number of
    /// `participants`, each contributing `data_flits` of payload.
    ///
    /// `log2 p` exchange rounds; in round `k` every node swaps its full
    /// (partially reduced) vector with the partner at XOR distance `2^k`,
    /// and may only do so once its round-`k−1` exchange has arrived. Each
    /// round is its own phase (`xchg0`, `xchg1`, ...), so reports show the
    /// per-round time doubling as partners move further apart.
    pub fn rd_allreduce(participants: &[u32], data_flits: u64) -> Result<Workload, String> {
        let p = participants.len();
        if p < 2 || !p.is_power_of_two() {
            return Err(format!(
                "recursive doubling needs a power-of-two participant count, got {p}"
            ));
        }
        let rounds = p.trailing_zeros() as usize;
        let mut wl = Workload::new("rd-allreduce");
        let flits = data_flits.max(1);
        let mid = |k: usize, i: usize| (k * p + i) as u32;
        for k in 0..rounds {
            let phase = wl.phase(format!("xchg{k}"));
            for i in 0..p {
                let partner = i ^ (1 << k);
                let msg = Message {
                    src: participants[i],
                    dst: participants[partner],
                    flits,
                    phase,
                };
                if k == 0 {
                    wl.push(msg, &[]);
                } else {
                    // Node i's round-k send needs its round-(k−1) inbound
                    // message — the one its previous partner sent it.
                    wl.push(msg, &[mid(k - 1, i ^ (1 << (k - 1)))]);
                }
            }
        }
        Ok(wl)
    }

    /// All-to-all (personalized exchange): every participant sends
    /// `flits_per_pair` flits to every other participant.
    ///
    /// Dependency-free — the network's backpressure is the only governor —
    /// but the *submission* order is staggered round-robin (step `s`: node
    /// `i` targets node `i+s`), the classic schedule that avoids every
    /// source hammering the same destination at once.
    pub fn all_to_all(participants: &[u32], flits_per_pair: u64) -> Workload {
        let p = participants.len();
        assert!(p >= 2, "all-to-all needs at least 2 participants");
        let mut wl = Workload::new("all-to-all");
        let phase = wl.phase("exchange");
        let flits = flits_per_pair.max(1);
        for s in 1..p {
            for i in 0..p {
                wl.push(
                    Message {
                        src: participants[i],
                        dst: participants[(i + s) % p],
                        flits,
                        phase,
                    },
                    &[],
                );
            }
        }
        wl
    }

    /// Binomial-tree broadcast of `data_flits` from `participants[0]` to
    /// the rest.
    ///
    /// Round `k` doubles the set of endpoints holding the data: each
    /// holder forwards to the participant at index distance `2^k`. A
    /// relay depends on the message that delivered its own copy.
    pub fn broadcast(participants: &[u32], data_flits: u64) -> Workload {
        let p = participants.len();
        assert!(p >= 2, "broadcast needs at least 2 participants");
        let mut wl = Workload::new("broadcast");
        let phase = wl.phase("broadcast");
        let flits = data_flits.max(1);
        // recv[i] = id of the message that delivers the data to index i.
        let mut recv: Vec<Option<u32>> = vec![None; p];
        let mut stride = 1usize;
        while stride < p {
            for i in 0..stride.min(p) {
                let j = i + stride;
                if j >= p {
                    continue;
                }
                let deps: Vec<u32> = recv[i].into_iter().collect();
                let id = wl.push(
                    Message {
                        src: participants[i],
                        dst: participants[j],
                        flits,
                        phase,
                    },
                    &deps,
                );
                recv[j] = Some(id);
            }
            stride *= 2;
        }
        wl
    }

    /// Binomial-tree reduce of `data_flits` per participant onto
    /// `participants[0]` — [`broadcast`](Self::broadcast) run backwards:
    /// a node sends its partial sum up the tree only after every child
    /// contribution has arrived.
    pub fn reduce(participants: &[u32], data_flits: u64) -> Workload {
        let p = participants.len();
        assert!(p >= 2, "reduce needs at least 2 participants");
        let mut wl = Workload::new("reduce");
        let phase = wl.phase("reduce");
        let flits = data_flits.max(1);
        // Mirror the broadcast rounds in reverse: in the last broadcast
        // round, leaves at distance `stride` send first.
        let mut strides = Vec::new();
        let mut s = 1usize;
        while s < p {
            strides.push(s);
            s *= 2;
        }
        // recvd[i] = messages index i must have absorbed before sending.
        let mut recvd: Vec<Vec<u32>> = vec![Vec::new(); p];
        for &stride in strides.iter().rev() {
            for i in 0..stride.min(p) {
                let j = i + stride;
                if j >= p {
                    continue;
                }
                let deps = recvd[j].clone();
                let id = wl.push(
                    Message {
                        src: participants[j],
                        dst: participants[i],
                        flits,
                        phase,
                    },
                    &deps,
                );
                recvd[i].push(id);
            }
        }
        wl
    }

    /// A pipeline-parallel schedule: `microbatches` activations of
    /// `flits_per_activation` flits flow through the `stages` endpoints in
    /// order; stage `j` forwards microbatch `m` once it has received it
    /// from stage `j − 1`. Each stage boundary is a phase (`s0→s1`, ...),
    /// so the report shows the pipeline fill/drain ramp per link.
    pub fn pipeline(stages: &[u32], microbatches: u32, flits_per_activation: u64) -> Workload {
        let n = stages.len();
        assert!(n >= 2, "pipeline needs at least 2 stages");
        assert!(microbatches >= 1, "pipeline needs at least 1 microbatch");
        let mut wl = Workload::new("pipeline");
        let flits = flits_per_activation.max(1);
        let links = n - 1;
        let mid = |j: usize, m: u32| j as u32 * microbatches + m;
        for j in 0..links {
            let phase = wl.phase(format!("s{j}\u{2192}s{}", j + 1));
            for m in 0..microbatches {
                let msg = Message {
                    src: stages[j],
                    dst: stages[j + 1],
                    flits,
                    phase,
                };
                if j == 0 {
                    wl.push(msg, &[]);
                } else {
                    wl.push(msg, &[mid(j - 1, m)]);
                }
            }
        }
        wl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<u32> {
        (0..n).collect()
    }

    #[test]
    fn ring_allreduce_shape() {
        let wl = Workload::ring_allreduce(&ids(4), 16);
        assert_eq!(wl.len(), 2 * 3 * 4); // 2(p-1) steps × p messages
        assert_eq!(wl.total_flits(), 24 * 4); // chunk = 16/4 = 4
        assert_eq!(wl.phases, vec!["reduce-scatter", "allgather"]);
        wl.validate(4).unwrap();
        // Step 0 has no deps; later steps depend on the ring predecessor.
        for i in 0..4 {
            assert!(wl.preds(i).is_empty());
        }
        assert_eq!(wl.preds(4), &[3]); // step1 node0 ← step0 node3
        assert_eq!(wl.preds(5), &[0]); // step1 node1 ← step0 node0
    }

    #[test]
    fn rd_allreduce_requires_power_of_two() {
        assert!(Workload::rd_allreduce(&ids(6), 8).is_err());
        let wl = Workload::rd_allreduce(&ids(8), 8).unwrap();
        assert_eq!(wl.len(), 3 * 8);
        assert_eq!(wl.phases.len(), 3);
        wl.validate(8).unwrap();
        // Round-1 send of node 0 depends on round-0 message 0^1 = node 1's.
        assert_eq!(wl.preds(8), &[1]);
    }

    #[test]
    fn all_to_all_is_complete_and_staggered() {
        let wl = Workload::all_to_all(&ids(5), 3);
        assert_eq!(wl.len(), 5 * 4);
        wl.validate(5).unwrap();
        let mut pairs: Vec<(u32, u32)> = wl.messages().iter().map(|m| (m.src, m.dst)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 20, "every ordered pair exactly once");
        // First p messages target distance 1, not a common hotspot.
        let first: Vec<u32> = wl.messages()[..5].iter().map(|m| m.dst).collect();
        assert_eq!(first, vec![1, 2, 3, 4, 0]);
    }

    #[test]
    fn broadcast_and_reduce_are_trees() {
        for p in [2u32, 3, 5, 8] {
            let b = Workload::broadcast(&ids(p), 7);
            assert_eq!(b.len() as u32, p - 1, "p={p}");
            b.validate(p).unwrap();
            let r = Workload::reduce(&ids(p), 7);
            assert_eq!(r.len() as u32, p - 1, "p={p}");
            r.validate(p).unwrap();
            // Reduce root receives ceil(log2 p) partial sums.
            let to_root = r.messages().iter().filter(|m| m.dst == 0).count();
            assert_eq!(to_root as u32, (p as f64).log2().ceil() as u32);
        }
    }

    #[test]
    fn pipeline_chains_microbatches() {
        let wl = Workload::pipeline(&[3, 1, 4], 2, 8);
        assert_eq!(wl.len(), 4); // 2 links × 2 microbatches
        assert_eq!(wl.phases.len(), 2);
        wl.validate(5).unwrap();
        // Second link's microbatch m depends on the first link's m.
        assert_eq!(wl.preds(2), &[0]);
        assert_eq!(wl.preds(3), &[1]);
    }

    #[test]
    fn workload_json_round_trips() {
        for wl in [
            Workload::ring_allreduce(&ids(4), 16),
            Workload::rd_allreduce(&ids(8), 8).unwrap(),
            Workload::pipeline(&[3, 1, 4], 2, 8),
        ] {
            let v = Value::parse(&wl.to_json()).unwrap();
            let back = Workload::from_json(&v, "w").unwrap();
            assert_eq!(back, wl);
            assert_eq!(back.to_json(), wl.to_json());
        }
    }

    #[test]
    fn workload_json_errors_are_precise() {
        let cases: &[(&str, &str)] = &[
            (
                r#"{"phases": [], "messages": []}"#,
                "w.name: missing required key",
            ),
            (
                r#"{"name": "x", "phases": [1], "messages": []}"#,
                "w.phases[0]: expected string",
            ),
            (
                r#"{"name": "x", "phases": ["p"], "messages": [{"src": 0, "dst": 1, "phase": 0}]}"#,
                "w.messages[0].flits: missing required key",
            ),
            (
                r#"{"name": "x", "phases": ["p"], "messages": [{"src": 0, "dst": 1, "flits": -3, "phase": 0}]}"#,
                "w.messages[0].flits: expected non-negative integer",
            ),
            (
                r#"{"name": "x", "phases": ["p"], "messages": [{"src": 0, "dst": 1, "flits": 4, "phase": 0, "preds": [0.5]}]}"#,
                "w.messages[0].preds[0]: expected non-negative integer",
            ),
            (
                r#"{"name": "x", "phases": [], "messages": [], "extra": 0}"#,
                "w.extra: unknown key",
            ),
        ];
        for (doc, want) in cases {
            let v = Value::parse(doc).unwrap();
            assert_eq!(&Workload::from_json(&v, "w").unwrap_err(), want, "{doc}");
        }
    }

    #[test]
    fn validate_rejects_bad_graphs() {
        let mut wl = Workload::new("bad");
        let ph = wl.phase("p");
        let msg = |src, dst| Message {
            src,
            dst,
            flits: 1,
            phase: ph,
        };
        wl.push(msg(0, 0), &[]);
        assert!(wl.validate(4).unwrap_err().contains("self-message"));

        let mut wl = Workload::new("cycle");
        let ph = wl.phase("p");
        let m = |src, dst| Message {
            src,
            dst,
            flits: 1,
            phase: ph,
        };
        wl.push(m(0, 1), &[1]);
        wl.push(m(1, 2), &[0]);
        assert!(wl.validate(4).unwrap_err().contains("cycle"));

        let mut wl = Workload::new("range");
        let ph = wl.phase("p");
        wl.push(
            Message {
                src: 0,
                dst: 9,
                flits: 1,
                phase: ph,
            },
            &[],
        );
        assert!(wl.validate(4).unwrap_err().contains("out of range"));
    }
}
