//! Multi-tenant serving: many independent jobs sharing one fabric.
//!
//! A *job* is one collective workload instance (a training allreduce, an
//! inference pipeline, an all-to-all shard, ...) arriving at a seeded
//! cycle and placed onto a subset of the fabric's endpoints. The
//! [`MultiJobDriver`] multiplexes every admitted job's DAG frontier into
//! the engine through the ordinary [`WorkloadDriver`] hook, so a serving
//! run rides `run_closed_loop_on` unchanged and inherits its bit-identity
//! guarantee across partitions × workers × stepping modes.
//!
//! Determinism contract:
//!
//! * **Arrivals** are a pure function of `(seed, cycle)`: the Poisson-like
//!   process draws one keyed Bernoulli per cycle via
//!   [`SplitMix64::for_event`], so skipping idle cycles cannot change the
//!   arrival sequence, and a longer horizon extends the sequence without
//!   rewriting its prefix. Fixed-trace arrivals are taken verbatim.
//! * **Class and placement** of job `k` are keyed draws on `k`, never on
//!   simulation state.
//! * **Admission** happens in `pre_cycle` — the engine's merged-state
//!   barrier hook — at exactly the job's arrival cycle: the driver's
//!   [`WorkloadDriver::next_release`] reports the next arrival, so
//!   event-driven fast-forward can never skip past it.
//! * **Message ids** partition the tag space as
//!   `job id | intra-job id | seq` ([`crate::message::job_packet_id`]),
//!   keeping concurrent jobs' reassembly state disjoint.

use crate::collective::Workload;
use crate::message::{
    job_msg_of, job_of, job_packet_id, segments, Reassembly, MAX_JOBS, MAX_JOB_MESSAGES,
};
use std::collections::BTreeSet;
use wsdf_exec::BspPool;
use wsdf_sim::{
    Arrival, FaultMap, Injector, Metrics, NetworkDesc, RouteOracle, SimConfig, SimResult,
    Simulation, SplitMix64, TraceRec, Tracer, WorkloadDriver,
};

/// Keyed-stream salt for arrival draws (one Bernoulli per cycle).
const ARRIVAL_STREAM: u64 = 0x7E4A_4C1D_0001;
/// Keyed-stream salt for per-job class selection.
const CLASS_STREAM: u64 = 0x7E4A_4C1D_0002;
/// Keyed-stream salt for per-job overlapping-placement sampling.
const PLACEMENT_STREAM: u64 = 0x7E4A_4C1D_0003;

/// How job arrival cycles are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson-like seeded process: at most one arrival per cycle, each
    /// cycle an independent keyed Bernoulli with probability
    /// `rate_per_kcycle / 1000` (so the mean inter-arrival gap is
    /// `1000 / rate_per_kcycle` cycles). Rate must lie in `(0, 1000]`.
    Poisson {
        /// Expected arrivals per 1000 cycles, in `(0, 1000]`.
        rate_per_kcycle: f64,
        /// Cycles `0..horizon` are eligible for arrivals.
        horizon: u64,
    },
    /// Fixed arrival trace: exactly these cycles, one job each (sorted
    /// ascending at build; duplicates allowed — two jobs may arrive on
    /// the same cycle).
    Trace {
        /// Arrival cycle per job.
        cycles: Vec<u64>,
    },
}

impl ArrivalProcess {
    /// Materialize the arrival cycles, capped at `max_jobs`, sorted
    /// ascending. Pure in `(self, seed)` — see the module determinism
    /// contract.
    pub fn cycles(&self, seed: u64, max_jobs: u64) -> Vec<u64> {
        match self {
            ArrivalProcess::Poisson {
                rate_per_kcycle,
                horizon,
            } => {
                let p = rate_per_kcycle / 1000.0;
                let mut out = Vec::new();
                for c in 0..*horizon {
                    if out.len() as u64 >= max_jobs {
                        break;
                    }
                    if SplitMix64::for_event(seed, ARRIVAL_STREAM, c).chance(p) {
                        out.push(c);
                    }
                }
                out
            }
            ArrivalProcess::Trace { cycles } => {
                let mut out: Vec<u64> = cycles.iter().copied().take(max_jobs as usize).collect();
                out.sort_unstable();
                out
            }
        }
    }
}

/// How a job's participants are laid out over the live endpoint list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Contiguous run of endpoints starting at
    /// `(job index × participants) mod n` — consecutive jobs occupy
    /// disjoint blocks until the list wraps.
    Block,
    /// Every `⌊n / participants⌋`-th endpoint, offset by the job index —
    /// spreads one job across the fabric, interleaving jobs.
    Strided,
    /// A seeded random sample without replacement — jobs overlap and may
    /// oversubscribe hot endpoints.
    Overlapping,
}

impl Placement {
    /// Stable scenario-file name.
    pub fn name(&self) -> &'static str {
        match self {
            Placement::Block => "block",
            Placement::Strided => "strided",
            Placement::Overlapping => "overlapping",
        }
    }

    /// Inverse of [`Self::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "block" => Placement::Block,
            "strided" => Placement::Strided,
            "overlapping" => Placement::Overlapping,
            _ => return None,
        })
    }

    /// Resolve the endpoint set of job `job_index` with `participants`
    /// members out of `endpoints` (the live endpoint list, in id order).
    /// Deterministic in `(self, seed, job_index)`; `participants` must
    /// not exceed `endpoints.len()`.
    pub fn resolve(
        &self,
        seed: u64,
        job_index: u64,
        participants: usize,
        endpoints: &[u32],
    ) -> Vec<u32> {
        let n = endpoints.len();
        assert!(participants <= n, "placement wider than the fabric");
        match self {
            Placement::Block => {
                let start = (job_index as usize * participants) % n;
                (0..participants)
                    .map(|i| endpoints[(start + i) % n])
                    .collect()
            }
            Placement::Strided => {
                let stride = (n / participants).max(1);
                let offset = job_index as usize % stride;
                (0..participants)
                    .map(|i| endpoints[(offset + i * stride) % n])
                    .collect()
            }
            Placement::Overlapping => {
                // Partial Fisher–Yates over the index range, keyed by job.
                let mut rng = SplitMix64::for_agent(seed ^ PLACEMENT_STREAM, job_index);
                let mut idx: Vec<usize> = (0..n).collect();
                for i in 0..participants {
                    let j = i + rng.next_below((n - i) as u64) as usize;
                    idx.swap(i, j);
                }
                let mut picked: Vec<u32> =
                    idx[..participants].iter().map(|&i| endpoints[i]).collect();
                picked.sort_unstable();
                picked
            }
        }
    }
}

/// One job class of a serving mix: what arrives, how wide, where it
/// lands, and its deadline budget.
#[derive(Debug, Clone, PartialEq)]
pub struct JobClass {
    /// Class label (report rows key on it).
    pub name: String,
    /// Collective builder name (`ring_allreduce`, `rd_allreduce`,
    /// `all_to_all`, `broadcast`, `reduce`, `pipeline`).
    pub collective: String,
    /// Payload flits (per participant/pair/activation — whatever the
    /// builder takes).
    pub flits: u64,
    /// Microbatch count (pipeline builder only; 1 otherwise).
    pub microbatches: u32,
    /// Endpoints per job instance.
    pub participants: u32,
    /// Placement policy for this class's instances.
    pub placement: Placement,
    /// Completion-time deadline in cycles (0 = no SLO tracked).
    pub slo_cycles: u64,
    /// Relative arrival weight among classes (> 0).
    pub weight: f64,
}

/// A full serving workload: arrival process plus job-class mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingSpec {
    /// Seed of every keyed draw (arrivals, class mix, placements) —
    /// independent of the engine's `SimConfig::seed`.
    pub seed: u64,
    /// When jobs arrive.
    pub arrivals: ArrivalProcess,
    /// Hard cap on spawned jobs (also bounds Poisson tails).
    pub max_jobs: u64,
    /// The class mix (non-empty; weights > 0).
    pub classes: Vec<JobClass>,
}

/// One materialized job: a workload instance with an arrival cycle and a
/// resolved endpoint set.
#[derive(Debug, Clone)]
pub struct JobInstance {
    /// Job id (dense, arrival order; the tag-space job field).
    pub id: u32,
    /// Index into [`ServingSpec::classes`].
    pub class: u32,
    /// Cycle the job arrives (its DAG roots become eligible here).
    pub arrival: u64,
    /// Resolved participant endpoints.
    pub endpoints: Vec<u32>,
    /// The job's message DAG.
    pub workload: Workload,
}

/// Materialize a [`ServingSpec`] against the live endpoint list: draw the
/// arrival cycles, assign a class to each job by weighted keyed draw, and
/// resolve each job's placement. Errors are human-readable and stable
/// (the scenario frontend forwards them verbatim).
pub fn build_jobs(spec: &ServingSpec, endpoints: &[u32]) -> Result<Vec<JobInstance>, String> {
    if spec.classes.is_empty() {
        return Err("serving spec has no job classes".into());
    }
    if spec.max_jobs == 0 || spec.max_jobs > MAX_JOBS {
        return Err(format!("max_jobs must be in 1..={MAX_JOBS}"));
    }
    let total_weight: f64 = spec.classes.iter().map(|c| c.weight).sum();
    // NaN-safe: a NaN weight must fail this gate, not flow into the draw.
    if total_weight.is_nan() || total_weight <= 0.0 {
        return Err("class weights must sum to a positive number".into());
    }
    let arrivals = spec.arrivals.cycles(spec.seed, spec.max_jobs);
    if arrivals.is_empty() {
        return Err(
            "no job arrivals (raise rate_per_kcycle or horizon, or give a non-empty trace)".into(),
        );
    }
    let mut jobs = Vec::with_capacity(arrivals.len());
    for (k, &arrival) in arrivals.iter().enumerate() {
        // Weighted class draw, keyed on the job index.
        let mut x =
            SplitMix64::for_agent(spec.seed ^ CLASS_STREAM, k as u64).next_f64() * total_weight;
        let mut ci = spec.classes.len() - 1;
        for (i, c) in spec.classes.iter().enumerate() {
            if x < c.weight {
                ci = i;
                break;
            }
            x -= c.weight;
        }
        let class = &spec.classes[ci];
        let p = class.participants as usize;
        if p < 2 {
            return Err(format!(
                "class \"{}\": needs at least 2 participants",
                class.name
            ));
        }
        if p > endpoints.len() {
            return Err(format!(
                "class \"{}\": {} participants exceed the {} usable endpoints",
                class.name,
                p,
                endpoints.len()
            ));
        }
        let ids = class.placement.resolve(spec.seed, k as u64, p, endpoints);
        let workload = build_collective(&class.collective, &ids, class.flits, class.microbatches)
            .map_err(|e| format!("class \"{}\": {e}", class.name))?;
        if workload.len() as u64 > MAX_JOB_MESSAGES {
            return Err(format!(
                "class \"{}\": {} messages exceed the per-job limit {MAX_JOB_MESSAGES}",
                class.name,
                workload.len()
            ));
        }
        jobs.push(JobInstance {
            id: k as u32,
            class: ci as u32,
            arrival,
            endpoints: ids,
            workload,
        });
    }
    Ok(jobs)
}

/// Dispatch a collective builder by its scenario-file name.
fn build_collective(
    kind: &str,
    ids: &[u32],
    flits: u64,
    microbatches: u32,
) -> Result<Workload, String> {
    match kind {
        "ring_allreduce" => Ok(Workload::ring_allreduce(ids, flits)),
        "rd_allreduce" => Workload::rd_allreduce(ids, flits),
        "all_to_all" => Ok(Workload::all_to_all(ids, flits)),
        "broadcast" => Ok(Workload::broadcast(ids, flits)),
        "reduce" => Ok(Workload::reduce(ids, flits)),
        "pipeline" => Ok(Workload::pipeline(ids, microbatches, flits)),
        other => Err(format!("unknown collective \"{other}\"")),
    }
}

/// Result of one multi-job serving run.
#[derive(Debug, Clone)]
pub struct MultiJobOutcome {
    /// Completion cycle per job, in job-id order (the cycle the job's
    /// last message fully arrived).
    pub job_completion: Vec<u64>,
    /// Engine metrics over the whole run.
    pub metrics: Metrics,
}

/// Scheduler state of one admitted job.
struct JobState {
    /// Outstanding predecessor count per message.
    waiting: Vec<u32>,
    succs: Vec<Vec<u32>>,
    reasm: Reassembly,
    /// Latest message-completion cycle seen (the job CT once all land).
    last_done: u64,
    completed: usize,
}

/// Multi-job closed-loop scheduler; implements the engine's
/// [`WorkloadDriver`] hook over every admitted job at once.
///
/// Jobs are admitted at their arrival cycle inside `pre_cycle` (the
/// merged-state barrier hook); each job's frontier then releases exactly
/// as [`crate::driver::ClosedLoop`] would, with packet ids in the job's
/// slice of the tag space.
pub struct MultiJobDriver<'a> {
    jobs: &'a [JobInstance],
    packet_len: u8,
    /// Jobs `0..next_admit` are admitted (jobs are in arrival order).
    next_admit: usize,
    states: Vec<Option<JobState>>,
    /// Eligible-but-not-yet-submitted messages, ordered by
    /// (eligible cycle, job id, message id) — the deterministic
    /// submission order across all admitted jobs.
    ready: BTreeSet<(u64, u32, u32)>,
    /// Completion cycle per job (`u64::MAX` = not yet complete).
    job_completion: Vec<u64>,
    jobs_done: usize,
    /// Telemetry buffer for job admit/retire records; `None` (the
    /// default) records nothing. Armed by [`Self::record_trace`] when a
    /// run traces the `jobs` stream.
    trace_buf: Option<Vec<TraceRec>>,
}

impl<'a> MultiJobDriver<'a> {
    /// Driver over `jobs` (must be sorted by arrival cycle — as
    /// [`build_jobs`] returns them), segmenting into packets of at most
    /// `packet_len` flits.
    pub fn new(jobs: &'a [JobInstance], packet_len: u8) -> Self {
        assert!(
            jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "jobs must be sorted by arrival cycle"
        );
        assert!(
            jobs.len() as u64 <= MAX_JOBS,
            "too many jobs for the tag space"
        );
        MultiJobDriver {
            jobs,
            packet_len,
            next_admit: 0,
            states: (0..jobs.len()).map(|_| None).collect(),
            ready: BTreeSet::new(),
            job_completion: vec![u64::MAX; jobs.len()],
            jobs_done: 0,
            trace_buf: None,
        }
    }

    /// Arm job-lifecycle telemetry: buffer an `admit` record at every
    /// admission and a `retire` record at every completion, handed to the
    /// engine through [`WorkloadDriver::drain_trace`]. Records are pure
    /// functions of the (deterministic) arrival/completion schedule, so
    /// the trace stream stays digest-stable.
    pub fn record_trace(&mut self) {
        self.trace_buf = Some(Vec::new());
    }

    /// Jobs fully completed so far.
    pub fn jobs_done(&self) -> usize {
        self.jobs_done
    }

    /// Admit every job whose arrival cycle has come: build its scheduler
    /// state and queue its DAG roots at the arrival cycle.
    fn admit_until(&mut self, now: u64) {
        while self.next_admit < self.jobs.len() && self.jobs[self.next_admit].arrival <= now {
            let j = self.next_admit;
            let job = &self.jobs[j];
            let wl = &job.workload;
            let sizes: Vec<u64> = wl.messages().iter().map(|m| m.flits).collect();
            let waiting: Vec<u32> = (0..wl.len() as u32)
                .map(|m| wl.preds(m).len() as u32)
                .collect();
            for (m, &w) in waiting.iter().enumerate() {
                if w == 0 {
                    self.ready.insert((job.arrival, j as u32, m as u32));
                }
            }
            self.states[j] = Some(JobState {
                waiting,
                succs: wl.successors(),
                reasm: Reassembly::new(&sizes),
                last_done: 0,
                completed: 0,
            });
            if let Some(buf) = &mut self.trace_buf {
                // Admission happens exactly at the arrival cycle (the
                // engine's fast-forward never hops past `next_release`),
                // so the arrival is also the record's stream position.
                buf.push(TraceRec::Admit {
                    cycle: job.arrival,
                    job: j as u32,
                    class: job.class,
                });
            }
            self.next_admit += 1;
        }
    }

    /// Consume the driver into a [`MultiJobOutcome`] (call after the
    /// engine reached quiescence).
    pub fn into_outcome(self, metrics: Metrics) -> MultiJobOutcome {
        assert_eq!(
            self.jobs_done,
            self.jobs.len(),
            "outcome of an unfinished run"
        );
        MultiJobOutcome {
            job_completion: self.job_completion,
            metrics,
        }
    }
}

impl WorkloadDriver for MultiJobDriver<'_> {
    fn pre_cycle(&mut self, now: u64, inj: &mut Injector<'_>) {
        self.admit_until(now);
        while let Some(&(at, j, m)) = self.ready.iter().next() {
            if at > now {
                break;
            }
            self.ready.remove(&(at, j, m));
            let msg = self.jobs[j as usize].workload.messages()[m as usize];
            for (seq, len) in segments(msg.flits, self.packet_len) {
                inj.submit(msg.src, msg.dst, job_packet_id(j, m, seq), len);
            }
        }
    }

    fn on_arrivals(&mut self, now: u64, arrivals: &[Arrival]) {
        for a in arrivals {
            let (j, m) = (job_of(a.id), job_msg_of(a.id));
            let st = self.states[j as usize]
                .as_mut()
                .expect("arrival for an unadmitted job");
            let Some(done_at) = st.reasm.on_packet(m, a.flits, a.arrive) else {
                continue;
            };
            st.completed += 1;
            st.last_done = st.last_done.max(done_at);
            for si in 0..st.succs[m as usize].len() {
                let s = st.succs[m as usize][si];
                let w = &mut st.waiting[s as usize];
                *w -= 1;
                if *w == 0 {
                    // Eligible the cycle after its last dependency landed.
                    self.ready.insert((done_at + 1, j, s));
                }
            }
            if st.completed == self.jobs[j as usize].workload.len() {
                self.job_completion[j as usize] = st.last_done;
                self.jobs_done += 1;
                if let Some(buf) = &mut self.trace_buf {
                    // Stamped at the detection cycle (`now`) to keep the
                    // stream cycle-monotonic; `done` carries the actual
                    // completion cycle, which may trail `now` by up to one
                    // ejection-channel latency (see `Arrival`).
                    buf.push(TraceRec::Retire {
                        cycle: now,
                        job: j,
                        done: st.last_done,
                    });
                }
            }
        }
    }

    fn done(&self) -> bool {
        self.next_admit == self.jobs.len() && self.jobs_done == self.jobs.len()
    }

    fn next_release(&self) -> Option<u64> {
        // Next frontier release or next un-admitted arrival, whichever is
        // sooner — so event-driven fast-forward can never hop over an
        // admission cycle.
        let frontier = self.ready.iter().next().map_or(u64::MAX, |&(at, ..)| at);
        let arrival = self
            .jobs
            .get(self.next_admit)
            .map_or(u64::MAX, |job| job.arrival);
        Some(frontier.min(arrival))
    }

    fn drain_trace(&mut self, out: &mut Vec<TraceRec>) {
        if let Some(buf) = &mut self.trace_buf {
            out.append(buf);
        }
    }
}

/// Run a materialized job set to quiescence on `net` with `oracle`, on an
/// explicit executor. `None` faults is the pristine path; `Some` arms the
/// engine's dead-channel asserts (placements must already avoid dead
/// endpoints — [`build_jobs`] resolves against the live list).
pub fn run_multi_job_faulted_on<O: RouteOracle>(
    net: &NetworkDesc,
    cfg: &SimConfig,
    oracle: O,
    jobs: &[JobInstance],
    pool: &BspPool,
    faults: Option<&FaultMap>,
) -> SimResult<MultiJobOutcome> {
    run_multi_job_traced_on(net, cfg, oracle, jobs, pool, faults, None)
}

/// [`run_multi_job_faulted_on`] with optional streaming telemetry: the
/// engine streams link/queue/latency records and, when the tracer's
/// `jobs` stream is on, the driver adds admit/retire records.
pub fn run_multi_job_traced_on<O: RouteOracle>(
    net: &NetworkDesc,
    cfg: &SimConfig,
    oracle: O,
    jobs: &[JobInstance],
    pool: &BspPool,
    faults: Option<&FaultMap>,
    trace: Option<&Tracer>,
) -> SimResult<MultiJobOutcome> {
    for job in jobs {
        job.workload
            .validate(net.num_endpoints() as u32)
            .map_err(wsdf_sim::SimError::Invalid)?;
    }
    let mut sim = Simulation::with_faults(net, cfg, oracle, faults)?;
    let mut driver = MultiJobDriver::new(jobs, cfg.packet_len);
    if let Some(t) = trace {
        sim.attach_trace(t);
        if t.config().jobs {
            driver.record_trace();
        }
    }
    let metrics = sim.run_closed_loop_on(pool, &mut driver)?;
    Ok(driver.into_outcome(metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(arrivals: ArrivalProcess) -> ServingSpec {
        ServingSpec {
            seed: 7,
            arrivals,
            max_jobs: 64,
            classes: vec![
                JobClass {
                    name: "train".into(),
                    collective: "ring_allreduce".into(),
                    flits: 8,
                    microbatches: 1,
                    participants: 4,
                    placement: Placement::Block,
                    slo_cycles: 0,
                    weight: 2.0,
                },
                JobClass {
                    name: "infer".into(),
                    collective: "pipeline".into(),
                    flits: 4,
                    microbatches: 2,
                    participants: 3,
                    placement: Placement::Overlapping,
                    slo_cycles: 500,
                    weight: 1.0,
                },
            ],
        }
    }

    #[test]
    fn poisson_arrivals_are_a_pure_prefix_closed_function_of_seed() {
        let short = ArrivalProcess::Poisson {
            rate_per_kcycle: 50.0,
            horizon: 2_000,
        };
        let long = ArrivalProcess::Poisson {
            rate_per_kcycle: 50.0,
            horizon: 10_000,
        };
        let a = short.cycles(42, u64::MAX);
        let b = long.cycles(42, u64::MAX);
        assert!(!a.is_empty(), "rate 50/kcycle over 2k cycles should arrive");
        assert_eq!(&b[..a.len()], &a[..], "longer horizon rewrote the prefix");
        assert!(b.len() > a.len(), "longer horizon added no arrivals");
        // Different seed, different sequence.
        assert_ne!(short.cycles(43, u64::MAX), a);
        // The cap truncates without re-drawing.
        assert_eq!(short.cycles(42, 3), a[..3].to_vec());
    }

    #[test]
    fn trace_arrivals_are_sorted_verbatim() {
        let t = ArrivalProcess::Trace {
            cycles: vec![30, 10, 10, 250],
        };
        assert_eq!(t.cycles(99, u64::MAX), vec![10, 10, 30, 250]);
        assert_eq!(t.cycles(99, 2), vec![10, 30]);
    }

    #[test]
    fn placements_are_deterministic_and_in_bounds() {
        let eps: Vec<u32> = (0..16).map(|i| i * 3).collect();
        for placement in [Placement::Block, Placement::Strided, Placement::Overlapping] {
            for k in 0..8u64 {
                let a = placement.resolve(5, k, 4, &eps);
                let b = placement.resolve(5, k, 4, &eps);
                assert_eq!(a, b, "{placement:?} job {k} not deterministic");
                assert_eq!(a.len(), 4);
                let set: BTreeSet<u32> = a.iter().copied().collect();
                assert_eq!(set.len(), 4, "{placement:?} job {k} repeats an endpoint");
                assert!(a.iter().all(|e| eps.contains(e)));
            }
        }
        // Block placements of consecutive jobs are disjoint until wrap.
        let b0 = Placement::Block.resolve(5, 0, 4, &eps);
        let b1 = Placement::Block.resolve(5, 1, 4, &eps);
        assert!(b0.iter().all(|e| !b1.contains(e)));
    }

    #[test]
    fn build_jobs_materializes_every_arrival() {
        let s = spec(ArrivalProcess::Trace {
            cycles: (0..10).map(|k| k * 100).collect(),
        });
        let eps: Vec<u32> = (0..12).collect();
        let jobs = build_jobs(&s, &eps).expect("build");
        assert_eq!(jobs.len(), 10);
        for (k, job) in jobs.iter().enumerate() {
            assert_eq!(job.id as usize, k);
            assert_eq!(job.arrival, k as u64 * 100);
            assert!(!job.workload.is_empty());
        }
        // Both classes appear under the 2:1 mix over 10 draws.
        let classes: BTreeSet<u32> = jobs.iter().map(|j| j.class).collect();
        assert_eq!(classes.len(), 2, "weighted draw collapsed to one class");
    }

    #[test]
    fn build_jobs_reports_placement_overflow() {
        // Enough draws that the 4-wide class certainly appears (the
        // 10-draw mix test above pins that both classes occur at seed 7).
        let s = spec(ArrivalProcess::Trace {
            cycles: (0..10).collect(),
        });
        let err = build_jobs(&s, &[0, 1, 2]).unwrap_err();
        assert!(err.contains("exceed the 3 usable endpoints"), "{err}");
    }

    #[test]
    fn empty_specs_are_rejected() {
        let mut s = spec(ArrivalProcess::Trace { cycles: vec![] });
        let eps: Vec<u32> = (0..8).collect();
        assert!(build_jobs(&s, &eps)
            .unwrap_err()
            .contains("no job arrivals"));
        s.arrivals = ArrivalProcess::Trace { cycles: vec![0] };
        s.classes.clear();
        assert!(build_jobs(&s, &eps).unwrap_err().contains("no job classes"));
    }
}
