//! The message tag space: how a closed-loop message rides the flit engine.
//!
//! A *message* is `flits` worth of payload from one endpoint to another.
//! The engine only moves fixed-layout packets, so a message is segmented
//! into packets of at most `SimConfig::packet_len` flits, and every packet
//! carries a compact tag in its 64-bit packet id:
//!
//! ```text
//!   bits 63..56   reserved (engine-internal VC stamp — must stay clear)
//!   bits 55..20   message id            (up to 2^36 messages per run)
//!   bits 19..0    packet seq in message (up to 2^20 packets per message)
//! ```
//!
//! At the destination the tag is all the reassembly state needed: the
//! driver counts arrived flits per message id ([`Reassembly`]) and declares
//! the message complete when the count reaches its size — the arrival
//! cycle of the last packet's tail flit is the message completion time.
//!
//! Multi-tenant runs partition the 36-bit message field further, into a
//! job id and an intra-job message id:
//!
//! ```text
//!   bits 55..40   job id            (up to 2^16 concurrent jobs)
//!   bits 39..20   intra-job msg id  (up to 2^20 messages per job)
//! ```
//!
//! [`job_packet_id`]/[`job_of`]/[`job_msg_of`] pack and unpack that split;
//! single-job drivers keep using the flat [`packet_id`] form (job id 0).

/// Bits of the packet-sequence field within a packet id.
pub const SEQ_BITS: u32 = 20;

/// Maximum packets per message (`2^SEQ_BITS`).
pub const MAX_PACKETS_PER_MESSAGE: u64 = 1 << SEQ_BITS;

/// Maximum message ids per run (ids must leave the engine's top 8 id bits
/// clear).
pub const MAX_MESSAGES: u64 = 1 << (56 - SEQ_BITS);

/// Pack (message id, packet seq) into a packet id.
#[inline]
pub fn packet_id(msg: u32, seq: u64) -> u64 {
    debug_assert!(seq < MAX_PACKETS_PER_MESSAGE);
    debug_assert!((msg as u64) < MAX_MESSAGES);
    ((msg as u64) << SEQ_BITS) | seq
}

/// Message id of a packet id.
#[inline]
pub fn msg_of(id: u64) -> u32 {
    (id >> SEQ_BITS) as u32
}

/// Packet sequence number of a packet id.
#[inline]
pub fn seq_of(id: u64) -> u64 {
    id & (MAX_PACKETS_PER_MESSAGE - 1)
}

/// Bits of the job-id field within a multi-tenant packet id.
pub const JOB_BITS: u32 = 16;

/// Bits of the intra-job message field within a multi-tenant packet id.
pub const INTRA_BITS: u32 = 56 - SEQ_BITS - JOB_BITS;

/// Maximum concurrent jobs per multi-tenant run (`2^JOB_BITS`).
pub const MAX_JOBS: u64 = 1 << JOB_BITS;

/// Maximum messages per job (`2^INTRA_BITS`).
pub const MAX_JOB_MESSAGES: u64 = 1 << INTRA_BITS;

/// Pack (job id, intra-job message id, packet seq) into a packet id.
#[inline]
pub fn job_packet_id(job: u32, msg: u32, seq: u64) -> u64 {
    debug_assert!((job as u64) < MAX_JOBS);
    debug_assert!((msg as u64) < MAX_JOB_MESSAGES);
    debug_assert!(seq < MAX_PACKETS_PER_MESSAGE);
    ((job as u64) << (INTRA_BITS + SEQ_BITS)) | ((msg as u64) << SEQ_BITS) | seq
}

/// Job id of a multi-tenant packet id.
#[inline]
pub fn job_of(id: u64) -> u32 {
    (id >> (INTRA_BITS + SEQ_BITS)) as u32
}

/// Intra-job message id of a multi-tenant packet id.
#[inline]
pub fn job_msg_of(id: u64) -> u32 {
    ((id >> SEQ_BITS) & (MAX_JOB_MESSAGES - 1)) as u32
}

/// Segment a message of `flits` flits into engine packets of at most
/// `packet_len` flits: full packets first, then one remainder packet.
/// Yields `(packet seq, packet flits)`.
pub fn segments(flits: u64, packet_len: u8) -> impl Iterator<Item = (u64, u8)> {
    let len = packet_len.max(1) as u64;
    let full = flits / len;
    let rem = (flits % len) as u8;
    (0..full)
        .map(move |s| (s, len as u8))
        .chain((rem > 0).then_some((full, rem)))
}

/// Number of packets a message of `flits` flits segments into.
pub fn packet_count(flits: u64, packet_len: u8) -> u64 {
    let len = packet_len.max(1) as u64;
    flits.div_ceil(len)
}

/// Per-message flit reassembly counters at the destination endpoints.
///
/// Arrival events are counted per packet (at the packet's tail — the last
/// of its flits on the wire), so reassembly is exact and order-independent
/// within a cycle: a message completes at the *maximum* arrival cycle over
/// its packets, whatever order the events are observed in.
#[derive(Debug, Clone)]
pub struct Reassembly {
    /// Flits not yet arrived, per message.
    remaining: Vec<u64>,
    /// Latest packet-arrival cycle seen so far, per message.
    last_arrival: Vec<u64>,
}

impl Reassembly {
    /// Trackers for messages of the given sizes (flits).
    pub fn new(sizes: &[u64]) -> Self {
        Reassembly {
            remaining: sizes.to_vec(),
            last_arrival: vec![0; sizes.len()],
        }
    }

    /// Record the arrival of one packet (`flits` flits of message `msg`,
    /// tail arriving at cycle `arrive`). Returns the message completion
    /// cycle when this packet was the last one outstanding.
    ///
    /// # Panics
    /// If the message over-delivers (more flits arrive than its size) —
    /// that would mean a duplicated or misrouted packet.
    pub fn on_packet(&mut self, msg: u32, flits: u8, arrive: u64) -> Option<u64> {
        let m = msg as usize;
        let rem = &mut self.remaining[m];
        assert!(
            *rem >= flits as u64,
            "message {msg} over-delivered: {flits} flits arrived with {rem} outstanding"
        );
        *rem -= flits as u64;
        let last = &mut self.last_arrival[m];
        *last = (*last).max(arrive);
        (*rem == 0).then_some(*last)
    }

    /// Flits still outstanding for `msg`.
    pub fn remaining(&self, msg: u32) -> u64 {
        self.remaining[msg as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        for (m, s) in [(0u32, 0u64), (1, 7), (0xAB_CDEF, 0xF_FFFF)] {
            let id = packet_id(m, s);
            assert_eq!(msg_of(id), m);
            assert_eq!(seq_of(id), s);
            // Engine VC-stamp bits stay clear.
            assert_eq!(id >> 56, 0);
        }
    }

    #[test]
    fn job_tag_roundtrip() {
        for (j, m, s) in [
            (0u32, 0u32, 0u64),
            (1, 2, 3),
            (0xFFFF, 0xF_FFFF, 0xF_FFFF),
            (42, 0, 19),
        ] {
            let id = job_packet_id(j, m, s);
            assert_eq!(job_of(id), j);
            assert_eq!(job_msg_of(id), m);
            assert_eq!(seq_of(id), s);
            // Engine VC-stamp bits stay clear even at the field maxima.
            assert_eq!(id >> 56, 0);
        }
        // Job 0 coincides with the flat single-job tag space.
        assert_eq!(job_packet_id(0, 7, 3), packet_id(7, 3));
        // Field widths tile the 36-bit message field exactly.
        assert_eq!(JOB_BITS + INTRA_BITS + SEQ_BITS, 56);
        assert_eq!(MAX_JOBS * MAX_JOB_MESSAGES, MAX_MESSAGES);
    }

    #[test]
    fn segmentation_covers_exactly() {
        for flits in [1u64, 3, 4, 5, 8, 17, 1000] {
            for len in [1u8, 3, 4, 8] {
                let segs: Vec<(u64, u8)> = segments(flits, len).collect();
                assert_eq!(segs.len() as u64, packet_count(flits, len));
                let total: u64 = segs.iter().map(|&(_, l)| l as u64).sum();
                assert_eq!(total, flits, "flits={flits} len={len}");
                for (i, &(seq, l)) in segs.iter().enumerate() {
                    assert_eq!(seq, i as u64);
                    assert!(l >= 1 && l <= len);
                }
                // Only the last packet may be short.
                for &(_, l) in &segs[..segs.len() - 1] {
                    assert_eq!(l, len);
                }
            }
        }
    }

    #[test]
    fn reassembly_completes_at_last_arrival() {
        let mut r = Reassembly::new(&[10, 4]);
        assert_eq!(r.on_packet(0, 4, 100), None);
        assert_eq!(r.on_packet(0, 4, 105), None);
        assert_eq!(r.remaining(0), 2);
        // Events may be observed out of arrival order across cycles of
        // different packets; completion is the max.
        assert_eq!(r.on_packet(0, 2, 103), Some(105));
        assert_eq!(r.on_packet(1, 4, 7), Some(7));
    }

    #[test]
    #[should_panic(expected = "over-delivered")]
    fn reassembly_rejects_duplicates() {
        let mut r = Reassembly::new(&[4]);
        r.on_packet(0, 4, 10);
        r.on_packet(0, 4, 11);
    }
}
