//! # wsdf-workload — closed-loop collective workloads
//!
//! Everything below `wsdf-sim` answers *"what latency at what offered
//! rate?"* — open-loop questions. This crate asks the question ML fabrics
//! are actually judged on: **how many cycles does this operation take end
//! to end?** It layers three pieces on the flit engine:
//!
//! * [`message`] — the tag space: messages (src, dst, size in flits)
//!   segmented into engine packets, reassembled at the destination by
//!   counting tagged packet arrivals.
//! * [`collective::Workload`] — message dependency DAGs, with builders for
//!   ring / recursive-doubling allreduce, all-to-all, binomial
//!   broadcast/reduce, and pipeline-parallel schedules.
//! * [`driver`] — the closed-loop scheduler: eligible messages inject as
//!   fast as backpressure allows, dependencies release at reassembly, and
//!   the run ends at quiescence, yielding a [`WorkloadOutcome`] with
//!   completion cycles, per-phase timing, and the engine's full latency
//!   histogram.
//! * [`tenancy`] — multi-tenant serving: a seeded job arrival process
//!   spawning collective instances onto endpoint placements, multiplexed
//!   through one [`tenancy::MultiJobDriver`] sharing the fabric.
//!
//! Completion times are bit-identical for any BSP partition or worker
//! count — dependency release happens at the cycle barrier on merged
//! state, never mid-cycle.
//!
//! ```no_run
//! use wsdf_workload::{run_collective, Workload};
//! use wsdf_sim::SimConfig;
//! # fn net() -> wsdf_sim::NetworkDesc { unimplemented!() }
//! # fn oracle() -> std::sync::Arc<dyn wsdf_sim::RouteOracle> { unimplemented!() }
//! let participants: Vec<u32> = (0..16).collect();
//! let wl = Workload::ring_allreduce(&participants, 256);
//! let out = run_collective(&net(), &SimConfig::default(), oracle(), &wl).unwrap();
//! println!("allreduce took {} cycles", out.completion_cycles);
//! ```

#![deny(missing_docs)]

pub mod collective;
pub mod driver;
pub mod message;
pub mod tenancy;

pub use collective::{Message, Workload};
pub use driver::{
    run_collective, run_collective_faulted_on, run_collective_on, run_collective_traced_on,
    ClosedLoop, PhaseStat, WorkloadOutcome,
};
pub use message::{packet_count, packet_id, segments, Reassembly};
pub use tenancy::{
    build_jobs, run_multi_job_faulted_on, run_multi_job_traced_on, ArrivalProcess, JobClass,
    JobInstance, MultiJobDriver, MultiJobOutcome, Placement, ServingSpec,
};
