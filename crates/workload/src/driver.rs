//! The closed-loop driver: releases DAG messages into the engine as their
//! dependencies complete, and runs the simulation to quiescence.
//!
//! Determinism: every decision is a function of message completion cycles
//! (which the engine reports bit-identically for any partition/worker
//! count) and ties are broken by message id, so a collective's completion
//! time is a *property of the network*, not of the execution schedule —
//! the determinism matrix in `tests/workload_collectives.rs` pins this
//! down.

use crate::collective::Workload;
use crate::message::{msg_of, packet_id, segments, Reassembly};
use std::collections::BTreeSet;
use wsdf_exec::BspPool;
use wsdf_sim::{
    Arrival, FaultMap, Injector, Metrics, NetworkDesc, RouteOracle, SimConfig, SimResult,
    Simulation, Tracer, WorkloadDriver,
};

/// Timing of one workload phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase label (from [`Workload::phases`]).
    pub name: String,
    /// Messages in this phase.
    pub messages: u64,
    /// Payload flits in this phase.
    pub flits: u64,
    /// Cycle the first message of the phase became eligible.
    pub start: u64,
    /// Cycle the last message of the phase fully arrived.
    pub end: u64,
}

impl PhaseStat {
    /// Achieved phase bandwidth in flits/cycle (payload over the phase's
    /// eligible-to-complete span).
    pub fn achieved_flits_per_cycle(&self) -> f64 {
        let span = self.end.saturating_sub(self.start).max(1);
        self.flits as f64 / span as f64
    }
}

/// Result of one closed-loop collective run.
#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    /// End-to-end completion time: the cycle the last message of the
    /// workload fully arrived at its destination.
    pub completion_cycles: u64,
    /// Engine metrics over the whole run (packet latency histogram,
    /// injected/ejected flit counts, ... — `measure_cycles` equals the
    /// cycles simulated to quiescence).
    pub metrics: Metrics,
    /// Per-phase timing, in [`Workload::phases`] order.
    pub phases: Vec<PhaseStat>,
    /// Completion cycle of every message, in message-id order.
    pub message_completion: Vec<u64>,
}

/// Closed-loop scheduler state for one [`Workload`] run; implements the
/// engine's [`WorkloadDriver`] hook.
pub struct ClosedLoop<'a> {
    wl: &'a Workload,
    packet_len: u8,
    /// Outstanding predecessor count per message.
    waiting: Vec<u32>,
    succs: Vec<Vec<u32>>,
    reasm: Reassembly,
    /// Completion cycle per message (`u64::MAX` = not yet complete).
    completed_at: Vec<u64>,
    /// Eligible-but-not-yet-submitted messages, ordered by
    /// (eligible cycle, message id) — the deterministic submission order.
    ready: BTreeSet<(u64, u32)>,
    /// First-eligible cycle per phase (`u64::MAX` until a message of the
    /// phase becomes eligible).
    phase_start: Vec<u64>,
    completed: usize,
}

impl<'a> ClosedLoop<'a> {
    /// Driver for `wl`, segmenting messages into packets of at most
    /// `packet_len` flits (use the run's `SimConfig::packet_len`).
    pub fn new(wl: &'a Workload, packet_len: u8) -> Self {
        let sizes: Vec<u64> = wl.messages().iter().map(|m| m.flits).collect();
        let waiting: Vec<u32> = (0..wl.len() as u32)
            .map(|m| wl.preds(m).len() as u32)
            .collect();
        let mut phase_start = vec![u64::MAX; wl.phases.len()];
        let mut ready = BTreeSet::new();
        for (i, &w) in waiting.iter().enumerate() {
            if w == 0 {
                ready.insert((0u64, i as u32));
                let ph = wl.messages()[i].phase as usize;
                phase_start[ph] = 0;
            }
        }
        ClosedLoop {
            wl,
            packet_len,
            waiting,
            succs: wl.successors(),
            reasm: Reassembly::new(&sizes),
            completed_at: vec![u64::MAX; wl.len()],
            ready,
            phase_start,
            completed: 0,
        }
    }

    /// Messages completed so far.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Consume the driver into a [`WorkloadOutcome`] (call after the
    /// engine reached quiescence; `metrics` is the engine's return value).
    pub fn into_outcome(self, metrics: Metrics) -> WorkloadOutcome {
        assert_eq!(
            self.completed,
            self.wl.len(),
            "outcome of an unfinished run"
        );
        let mut phases: Vec<PhaseStat> = self
            .wl
            .phases
            .iter()
            .enumerate()
            .map(|(i, name)| PhaseStat {
                name: name.clone(),
                messages: 0,
                flits: 0,
                start: self.phase_start[i],
                end: 0,
            })
            .collect();
        for (m, msg) in self.wl.messages().iter().enumerate() {
            let ph = &mut phases[msg.phase as usize];
            ph.messages += 1;
            ph.flits += msg.flits;
            ph.end = ph.end.max(self.completed_at[m]);
        }
        WorkloadOutcome {
            completion_cycles: self.completed_at.iter().copied().max().unwrap_or(0),
            metrics,
            phases,
            message_completion: self.completed_at,
        }
    }
}

impl WorkloadDriver for ClosedLoop<'_> {
    fn pre_cycle(&mut self, now: u64, inj: &mut Injector<'_>) {
        while let Some(&(at, m)) = self.ready.iter().next() {
            if at > now {
                break;
            }
            self.ready.remove(&(at, m));
            let msg = self.wl.messages()[m as usize];
            for (seq, len) in segments(msg.flits, self.packet_len) {
                inj.submit(msg.src, msg.dst, packet_id(m, seq), len);
            }
        }
    }

    fn on_arrivals(&mut self, _now: u64, arrivals: &[Arrival]) {
        for a in arrivals {
            let m = msg_of(a.id);
            let Some(done_at) = self.reasm.on_packet(m, a.flits, a.arrive) else {
                continue;
            };
            self.completed_at[m as usize] = done_at;
            self.completed += 1;
            for &s in &self.succs[m as usize] {
                let w = &mut self.waiting[s as usize];
                *w -= 1;
                if *w == 0 {
                    // Eligible the cycle after its last dependency landed.
                    let at = done_at + 1;
                    self.ready.insert((at, s));
                    let ph = self.wl.messages()[s as usize].phase as usize;
                    self.phase_start[ph] = self.phase_start[ph].min(at);
                }
            }
        }
    }

    fn done(&self) -> bool {
        self.completed == self.wl.len()
    }

    fn next_release(&self) -> Option<u64> {
        // The ready set is keyed by eligible cycle, so its first entry is
        // exactly the next cycle `pre_cycle` submits at; an empty set means
        // everything outstanding is in flight and the engine may
        // fast-forward to its own next event.
        Some(self.ready.iter().next().map_or(u64::MAX, |&(at, _)| at))
    }
}

/// Run `wl` closed-loop on `net` with `oracle`, on an explicit executor.
///
/// Validates the workload, compiles the simulation, drives it to
/// quiescence (no fixed cycle budget — the run ends when every message
/// has reassembled and the network is empty), and returns completion
/// times plus engine metrics. `cfg`'s open-loop window fields
/// (warm-up/measure/drain) are ignored; its `packet_len`, buffering, VC,
/// partitioning and watchdog settings all apply.
pub fn run_collective_on<O: RouteOracle>(
    net: &NetworkDesc,
    cfg: &SimConfig,
    oracle: O,
    wl: &Workload,
    pool: &BspPool,
) -> SimResult<WorkloadOutcome> {
    run_collective_faulted_on(net, cfg, oracle, wl, pool, None)
}

/// [`run_collective_on`] with an optional [`FaultMap`]: `None` is the
/// pristine path; `Some` arms the engine's dead-channel asserts. The
/// workload must only use endpoints that are alive and mutually routable
/// under the faults (a fault-aware oracle panics otherwise).
pub fn run_collective_faulted_on<O: RouteOracle>(
    net: &NetworkDesc,
    cfg: &SimConfig,
    oracle: O,
    wl: &Workload,
    pool: &BspPool,
    faults: Option<&FaultMap>,
) -> SimResult<WorkloadOutcome> {
    run_collective_traced_on(net, cfg, oracle, wl, pool, faults, None)
}

/// [`run_collective_faulted_on`] with optional streaming telemetry: when
/// `trace` is `Some`, the engine's link/queue/latency streams are emitted
/// through the tracer for the whole closed-loop run. Telemetry is
/// observe-only — the outcome is bit-identical with and without it.
pub fn run_collective_traced_on<O: RouteOracle>(
    net: &NetworkDesc,
    cfg: &SimConfig,
    oracle: O,
    wl: &Workload,
    pool: &BspPool,
    faults: Option<&FaultMap>,
    trace: Option<&Tracer>,
) -> SimResult<WorkloadOutcome> {
    wl.validate(net.num_endpoints() as u32)
        .map_err(wsdf_sim::SimError::Invalid)?;
    let mut sim = Simulation::with_faults(net, cfg, oracle, faults)?;
    if let Some(t) = trace {
        sim.attach_trace(t);
    }
    let mut driver = ClosedLoop::new(wl, cfg.packet_len);
    let metrics = sim.run_closed_loop_on(pool, &mut driver)?;
    Ok(driver.into_outcome(metrics))
}

/// [`run_collective_on`] on the process-wide executor.
pub fn run_collective<O: RouteOracle>(
    net: &NetworkDesc,
    cfg: &SimConfig,
    oracle: O,
    wl: &Workload,
) -> SimResult<WorkloadOutcome> {
    run_collective_on(net, cfg, oracle, wl, wsdf_exec::global_pool())
}
