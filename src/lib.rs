//! Root crate of the *Switch-Less Dragonfly on Wafers* reproduction
//! workspace.
//!
//! This crate only re-exports the facade library [`wsdf`] so that the
//! workspace-level `examples/` and `tests/` have a single import root; all
//! functionality lives in the `crates/` members:
//!
//! * [`wsdf_sim`] — cycle-accurate flit-level simulator substrate
//! * [`wsdf_topo`] — topology builders (switch-based and switch-less Dragonfly)
//! * [`wsdf_routing`] — routing algorithms and VC disciplines
//! * [`wsdf_traffic`] — synthetic/adversarial/collective traffic patterns
//! * [`wsdf_workload`] — closed-loop collective workload DAGs + driver
//! * [`wsdf_analysis`] — analytical cost/throughput/layout models
//! * [`wsdf`] — high-level API used by examples, tests and the harness

pub use wsdf;
pub use wsdf_analysis as analysis;
pub use wsdf_routing as routing;
pub use wsdf_sim as sim;
pub use wsdf_topo as topo;
pub use wsdf_traffic as traffic;
pub use wsdf_workload as workload;
