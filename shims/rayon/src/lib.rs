//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of rayon's API its callers use — mutable parallel slice
//! iteration with `for_each`, `scope`/`spawn`, and `current_num_threads` —
//! backed by the persistent [`wsdf_exec`] worker pool. Earlier revisions
//! spawned and joined `std::thread::scope` threads on every call, which at
//! engine granularity (one call per BSP cycle) ate all the parallelism;
//! every entry point now rides the process-wide [`wsdf_exec::global_pool`],
//! so no call here ever creates a thread.

use wsdf_exec::global_pool;

/// Number of worker threads parallel iterators will use. Honors the
/// `WSDF_THREADS` and `RAYON_NUM_THREADS` overrides (in that order) before
/// falling back to the machine's available parallelism.
pub fn current_num_threads() -> usize {
    wsdf_exec::configured_threads()
}

/// The rayon prelude: importing it brings `par_iter_mut` into scope.
pub mod prelude {
    pub use crate::IntoParallelRefMutIterator;
}

/// Types that can hand out a mutable parallel iterator over their items.
pub trait IntoParallelRefMutIterator<'data> {
    /// The element type.
    type Item: Send + 'data;
    /// Obtain the parallel iterator.
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Item>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut(self.as_mut_slice())
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = T;
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut(self)
    }
}

/// A mutable parallel iterator over a slice.
pub struct ParIterMut<'data, T: Send>(&'data mut [T]);

/// Base pointer of a slice being split across pool slots.
struct SlicePtr<T>(*mut T);
// SAFETY: slots dereference disjoint index ranges (see `for_each`).
unsafe impl<T: Send> Sync for SlicePtr<T> {}

impl<T: Send> ParIterMut<'_, T> {
    /// Apply `f` to every element, splitting the slice into one contiguous
    /// block per pool slot. Falls back to a sequential loop when the slice
    /// or the pool cannot benefit from parallelism.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let len = self.0.len();
        let pool = global_pool();
        let slots = pool.workers().min(len);
        if len <= 1 || slots <= 1 {
            for item in self.0 {
                f(item);
            }
            return;
        }
        let base = SlicePtr(self.0.as_mut_ptr());
        pool.broadcast(slots, |s| {
            // Capture the Sync wrapper, not its raw-pointer field.
            let base = &base;
            // Balanced contiguous split: slot s owns [s*len/slots, ...).
            let lo = s * len / slots;
            let hi = (s + 1) * len / slots;
            for i in lo..hi {
                // SAFETY: slot ranges partition 0..len disjointly.
                f(unsafe { &mut *base.0.add(i) });
            }
        });
    }
}

/// A fork-join scope, mirroring `rayon::scope`: tasks spawned on it are
/// guaranteed to finish before `scope` returns.
///
/// Shim semantics: tasks accumulate while the scope closure runs and are
/// executed on the global pool when it returns (tasks may spawn further
/// tasks; rounds repeat until the queue drains). That preserves rayon's
/// completion guarantee, which is all the workspace relies on.
pub struct Scope<'scope> {
    tasks: std::sync::Mutex<Vec<ScopeTask<'scope>>>,
}

type ScopeTask<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

impl<'scope> Scope<'scope> {
    /// Queue `f` to run within this scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.tasks.lock().unwrap().push(Box::new(f));
    }
}

/// Create a scope, run `op` in it, then run every spawned task to
/// completion on the persistent pool before returning `op`'s result.
pub fn scope<'scope, F, R>(op: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        tasks: std::sync::Mutex::new(Vec::new()),
    };
    let out = op(&s);
    loop {
        let batch = std::mem::take(&mut *s.tasks.lock().unwrap());
        if batch.is_empty() {
            break;
        }
        run_batch(&s, batch);
    }
    out
}

fn run_batch<'scope>(s: &Scope<'scope>, batch: Vec<ScopeTask<'scope>>) {
    let pool = global_pool();
    let n = batch.len();
    let slots = pool.workers().min(n);
    if slots <= 1 {
        for t in batch {
            t(s);
        }
        return;
    }
    let tasks: Vec<std::sync::Mutex<Option<ScopeTask<'scope>>>> = batch
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    pool.broadcast(slots, |_| loop {
        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if i >= n {
            break;
        }
        let t = tasks[i].lock().unwrap().take().expect("task claimed twice");
        t(s);
    });
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_element_once() {
        let mut v: Vec<u64> = (0..1000).collect();
        let count = AtomicUsize::new(0);
        v.par_iter_mut().for_each(|x| {
            *x += 1;
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn empty_and_single() {
        let mut v: Vec<u8> = vec![];
        v.par_iter_mut().for_each(|_| unreachable!());
        let mut v = vec![7u8];
        v.par_iter_mut().for_each(|x| *x = 9);
        assert_eq!(v, vec![9]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn scope_completes_all_tasks_including_nested() {
        let count = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..10 {
                s.spawn(|s| {
                    count.fetch_add(1, Ordering::Relaxed);
                    s.spawn(|_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn nested_parallelism_inside_scope_tasks_is_safe() {
        // A scope task that itself uses par_iter_mut re-enters the pool
        // from a worker; the pool degrades the inner call to an inline
        // loop instead of deadlocking on the cycle barrier.
        let total = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    let mut v = vec![1usize; 100];
                    v.par_iter_mut().for_each(|x| *x += 1);
                    total.fetch_add(v.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 200);
    }

    #[test]
    fn scope_returns_op_result() {
        let r = super::scope(|s| {
            s.spawn(|_| {});
            42
        });
        assert_eq!(r, 42);
    }
}
