//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the *exact* subset of rayon's API that the engine uses — mutable
//! parallel slice iteration with `for_each`, plus `current_num_threads` —
//! implemented over `std::thread::scope`. Work is split into one
//! contiguous chunk per available core; each `for_each` call spawns and
//! joins its threads (no global pool), which is adequate at the engine's
//! granularity of one call per BSP cycle over partition-sized chunks.

use std::sync::OnceLock;

/// Number of worker threads parallel iterators will use (the machine's
/// available parallelism).
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The rayon prelude: importing it brings `par_iter_mut` into scope.
pub mod prelude {
    pub use crate::IntoParallelRefMutIterator;
}

/// Types that can hand out a mutable parallel iterator over their items.
pub trait IntoParallelRefMutIterator<'data> {
    /// The element type.
    type Item: Send + 'data;
    /// Obtain the parallel iterator.
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Item>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut(self.as_mut_slice())
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = T;
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut(self)
    }
}

/// A mutable parallel iterator over a slice.
pub struct ParIterMut<'data, T: Send>(&'data mut [T]);

impl<'data, T: Send> ParIterMut<'data, T> {
    /// Apply `f` to every element, splitting the slice into one chunk per
    /// available thread. Falls back to a sequential loop for slices that
    /// cannot benefit from parallelism.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let threads = current_num_threads();
        let len = self.0.len();
        if len <= 1 || threads <= 1 {
            for item in self.0 {
                f(item);
            }
            return;
        }
        let chunk = len.div_ceil(threads);
        std::thread::scope(|scope| {
            for sub in self.0.chunks_mut(chunk) {
                scope.spawn(|| {
                    for item in sub {
                        f(item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_element_once() {
        let mut v: Vec<u64> = (0..1000).collect();
        let count = AtomicUsize::new(0);
        v.par_iter_mut().for_each(|x| {
            *x += 1;
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn empty_and_single() {
        let mut v: Vec<u8> = vec![];
        v.par_iter_mut().for_each(|_| unreachable!());
        let mut v = vec![7u8];
        v.par_iter_mut().for_each(|x| *x = 9);
        assert_eq!(v, vec![9]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
