//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of criterion's API that its benches use: `Criterion`,
//! benchmark groups with `sample_size`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — per benchmark: one warm-up
//! iteration, then up to `sample_size` timed iterations bounded by a
//! wall-clock budget, reporting the mean, the minimum, and the
//! p50/p95/p99 iteration-time percentiles (nearest-rank over the recorded
//! samples). Results print as a table; set `CRITERION_JSON=<path>` to also
//! write them as a JSON array (used to record `BENCH_*.json` baselines).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark (after warm-up).
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` identifier.
    pub id: String,
    /// Timed iterations.
    pub iters: u64,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: f64,
    /// Median iteration time, nanoseconds (nearest-rank).
    pub p50_ns: f64,
    /// 95th-percentile iteration time, nanoseconds (nearest-rank).
    pub p95_ns: f64,
    /// 99th-percentile iteration time, nanoseconds (nearest-rank).
    pub p99_ns: f64,
    /// Executor worker count the bench ran with
    /// ([`wsdf_exec::configured_threads`]) — recorded so baselines from
    /// different machines/thread pins stay comparable.
    pub threads: usize,
    /// Free-form per-bench metadata (e.g. `partitions`), set via
    /// [`BenchmarkGroup::meta`].
    pub meta: Vec<(String, String)>,
}

/// The benchmark driver: collects measurements across groups.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            samples: 10,
            meta: Vec::new(),
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = 10;
        self.run_one(id.to_string(), samples, Vec::new(), f);
        self
    }

    fn run_one<F>(&mut self, id: String, samples: usize, meta: Vec<(String, String)>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: samples.max(1) as u64,
            iters: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            recorded: Vec::new(),
        };
        f(&mut b);
        let iters = b.iters.max(1);
        let mut sorted = std::mem::take(&mut b.recorded);
        sorted.sort_unstable();
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            // Nearest-rank: the ⌈q·n⌉-th smallest sample (1-based).
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1].as_nanos() as f64
        };
        let m = Measurement {
            id,
            iters: b.iters,
            mean_ns: b.total.as_nanos() as f64 / iters as f64,
            min_ns: if b.min == Duration::MAX {
                0.0
            } else {
                b.min.as_nanos() as f64
            },
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
            threads: wsdf_exec::configured_threads(),
            meta,
        };
        let tags: String = m.meta.iter().map(|(k, v)| format!(" {k}={v}")).collect();
        println!(
            "{:<52} {:>12.0} ns/iter (min {:>12.0}, p50 {:>12.0}, p99 {:>12.0} ns, {} iters, \
             {} threads{})",
            m.id, m.mean_ns, m.min_ns, m.p50_ns, m.p99_ns, m.iters, m.threads, tags
        );
        self.results.push(m);
    }

    /// Print the summary and honor `CRITERION_JSON`. Called by
    /// `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            let mut out = String::from("[\n");
            for (i, m) in self.results.iter().enumerate() {
                let meta: String = m
                    .meta
                    .iter()
                    .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!(
                    "  {{\"id\": \"{}\", \"iters\": {}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \
                     \"p50_ns\": {:.1}, \"p95_ns\": {:.1}, \"p99_ns\": {:.1}, \
                     \"threads\": {}, \"meta\": {{{}}}}}{}\n",
                    json_escape(&m.id),
                    m.iters,
                    m.mean_ns,
                    m.min_ns,
                    m.p50_ns,
                    m.p95_ns,
                    m.p99_ns,
                    m.threads,
                    meta,
                    if i + 1 < self.results.len() { "," } else { "" }
                ));
            }
            out.push_str("]\n");
            if let Err(e) = std::fs::write(&path, out) {
                eprintln!("criterion shim: cannot write {path}: {e}");
            } else {
                eprintln!("criterion shim: wrote {path}");
            }
        }
    }
}

/// Escape a string for inclusion in a JSON string literal (quotes,
/// backslashes, and control characters — ids and meta values are
/// free-form `Display` output).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A named group of benchmarks sharing a sample-size setting and a set of
/// metadata tags.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    samples: usize,
    meta: Vec<(String, String)>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Attach a metadata tag (e.g. `partitions`) to every *subsequent*
    /// benchmark in this group; setting an existing key overwrites it.
    /// Tags land in the printed table and the `meta` object of the
    /// `CRITERION_JSON` baseline, alongside the automatic `threads` field.
    pub fn meta(&mut self, key: impl Into<String>, value: impl Display) -> &mut Self {
        let key = key.into();
        let value = value.to_string();
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.meta.push((key, value));
        }
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.c.run_one(full, self.samples, self.meta.clone(), f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        self.c
            .run_one(full, self.samples, self.meta.clone(), |b| f(b, input));
        self
    }

    /// End the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier composed of a function name and a parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to every benchmark closure; `iter` does the timing.
pub struct Bencher {
    samples: u64,
    iters: u64,
    total: Duration,
    min: Duration,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Time `f`: one warm-up call, then up to the configured sample count
    /// (bounded by a wall-clock budget). Every sample is kept so the shim
    /// can report iteration-time percentiles alongside mean/min.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let budget_start = Instant::now();
        self.recorded.reserve(self.samples as usize);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.recorded.push(dt);
            self.iters += 1;
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

/// Bundle benchmark functions into a group runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Produce a `main` that runs the given groups and prints the summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_measure_and_record() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("param", 4), &4, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[0].id, "g/noop");
        assert_eq!(c.results[1].id, "g/param/4");
        assert!(c.results.iter().all(|m| m.iters >= 1));
        assert!(c.results.iter().all(|m| m.threads >= 1));
    }

    #[test]
    fn meta_tags_attach_to_subsequent_benches_and_overwrite() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(1);
            g.bench_function("untagged", |b| b.iter(|| 0));
            g.meta("partitions", 4);
            g.bench_function("p4", |b| b.iter(|| 0));
            g.meta("partitions", 8);
            g.bench_function("p8", |b| b.iter(|| 0));
            g.finish();
        }
        assert!(c.results[0].meta.is_empty());
        assert_eq!(
            c.results[1].meta,
            vec![("partitions".to_string(), "4".to_string())]
        );
        assert_eq!(
            c.results[2].meta,
            vec![("partitions".to_string(), "8".to_string())]
        );
    }

    #[test]
    fn iteration_percentiles_are_ordered() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(8);
            g.bench_function("work", |b| {
                b.iter(|| std::hint::black_box((0..1000u64).sum::<u64>()))
            });
            g.finish();
        }
        let m = &c.results[0];
        assert!(m.min_ns <= m.p50_ns, "{} > {}", m.min_ns, m.p50_ns);
        assert!(m.p50_ns <= m.p95_ns && m.p95_ns <= m.p99_ns);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }

    #[test]
    fn json_escape_covers_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("C:\\tmp"), "C:\\\\tmp");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
