//! Design-space exploration with the analytical model (Sec. III-B/III-D):
//! how scale, throughput bounds, diameter and balance move as the
//! configuration (n, m, a, b) changes — without running a simulation.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use wsdf::analysis::equations::{HopLatency, SlAnalytic};

fn main() {
    let configs = [
        (
            "tiny (Sec. III-B1)",
            SlAnalytic {
                n: 6,
                m: 2,
                a: 2,
                b: 4,
            },
        ),
        (
            "radix-16-like",
            SlAnalytic {
                n: 12,
                m: 4,
                a: 4,
                b: 2,
            },
        ),
        ("case study (Sec. III-C)", SlAnalytic::case_study()),
        (
            "balanced m=6",
            SlAnalytic {
                n: 18,
                m: 6,
                a: 8,
                b: 9,
            },
        ),
        (
            "wafer-maxed m=8",
            SlAnalytic {
                n: 24,
                m: 8,
                a: 8,
                b: 16,
            },
        ),
    ];

    println!(
        "{:<26} {:>9} {:>5} {:>5} {:>11} {:>7} {:>7} {:>7} {:>9}  diameter",
        "configuration", "chiplets", "k", "g", "balanced", "Tglob", "Tloc", "Tcg", "zeroload"
    );
    let lat = HopLatency::default();
    for (name, c) in configs {
        println!(
            "{:<26} {:>9} {:>5} {:>5} {:>11} {:>7.2} {:>7.2} {:>7.2} {:>7.0}ns  {}",
            name,
            c.total_chiplets(),
            c.k(),
            c.g(),
            if c.is_balanced() { "yes (Eq.3)" } else { "no" },
            c.t_global(),
            c.t_local(),
            c.t_cgroup(),
            c.diameter_latency_ns(&lat),
            c.diameter_hops(),
        );
    }

    println!(
        "\nSingle-W-group variant (Sec. III-D1): a 333-chip system from one\n\
         12-port C-group class needs no SR-LR conversion and no global links:"
    );
    let small = SlAnalytic {
        n: 12,
        m: 1,
        a: 1,
        b: 1,
    };
    // One chiplet per C-group, k = 12 ports, all used as local links:
    // up to k+1 = 13 C-groups... the paper quotes up to 333 chips for a
    // single-chiplet C-group with 12 external ports (ab ≤ k+1, plus the
    // global tier folded away).
    println!(
        "  k = {} ports per chip, diameter {} (vs {} with the global tier)",
        small.k(),
        small.single_wgroup_diameter_hops(),
        small.diameter_hops(),
    );
}
