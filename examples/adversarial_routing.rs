//! Adversarial traffic and non-minimal routing (the paper's Fig. 13
//! experiment at reduced scale): when all traffic funnels into a few
//! global links, minimal routing collapses and Valiant misrouting buys it
//! back.
//!
//! ```text
//! cargo run --release --example adversarial_routing
//! ```

use wsdf::routing::{RouteMode, VcScheme};
use wsdf::topo::{SlParams, SwParams};
use wsdf::{saturation_rate, sweep, Bench, PatternSpec, SweepConfig};

fn main() {
    // 9 W-groups keep the example under a minute; the full repro harness
    // runs the paper's 41-group system (`repro fig13`).
    let swp = SwParams::radix16().with_groups(9);
    let slp = SlParams::radix16().with_wgroups(9);
    let cfg = SweepConfig::default().scaled(0.3);

    for (spec, name, rates_min, rates_mis) in [
        (
            PatternSpec::Hotspot,
            "hotspot (4 active W-groups)",
            rates(0.5, 5),
            rates(1.0, 6),
        ),
        (
            PatternSpec::WorstCase,
            "worst-case (Wi -> Wi+1)",
            rates(0.2, 5),
            rates(0.6, 6),
        ),
    ] {
        println!("== {name} ==");
        for (bench, r) in [
            (Bench::switchbased(&swp, RouteMode::Minimal), &rates_min),
            (
                Bench::switchless(&slp, RouteMode::Minimal, VcScheme::Baseline),
                &rates_min,
            ),
            (Bench::switchbased(&swp, RouteMode::Valiant), &rates_mis),
            (
                Bench::switchless(&slp, RouteMode::Valiant, VcScheme::Baseline),
                &rates_mis,
            ),
        ] {
            let mode = if bench.label.contains("Mis") {
                "valiant"
            } else {
                "minimal"
            };
            let sat = saturation_rate(&sweep(&bench, &cfg, spec, r));
            println!(
                "  {:<10} {:<8} saturation {:>5.2} flits/cycle/chip",
                bench.label.replace("-Mis", ""),
                mode,
                sat
            );
        }
        println!();
    }
    println!(
        "Minimal routing can only use the direct W-group-to-W-group links\n\
         (1/W of the global links under worst-case traffic); Valiant spreads\n\
         the load over a random intermediate W-group, trading path length\n\
         for an order of magnitude in throughput — with one extra VC."
    );
}

fn rates(max: f64, steps: usize) -> Vec<f64> {
    (1..=steps).map(|i| max * i as f64 / steps as f64).collect()
}
