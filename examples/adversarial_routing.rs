//! Adversarial traffic and non-minimal routing (the paper's Fig. 13
//! experiment at reduced scale): when all traffic funnels into a few
//! global links, minimal routing collapses and Valiant misrouting buys it
//! back.
//!
//! ```text
//! cargo run --release --example adversarial_routing
//! ```

use wsdf::routing::{RouteMode, VcScheme};
use wsdf::topo::{SlParams, SwParams};
use wsdf::{AdaptiveConfig, Bench, PatternSpec, Session};

fn main() {
    // 9 W-groups keep the example under a minute; the full repro harness
    // runs the paper's 41-group system (`repro fig13`).
    let swp = SwParams::radix16().with_groups(9);
    let slp = SlParams::radix16().with_wgroups(9);
    // Adaptive saturation search: no per-(bench, pattern) rate grids to
    // hand-tune — the driver brackets and bisects each knee itself. Start
    // low: adversarial patterns saturate an order of magnitude below
    // uniform traffic.
    let cfg = AdaptiveConfig {
        start_chip: 0.05,
        ..Default::default()
    }
    .scaled(0.3);

    for (spec, name) in [
        (PatternSpec::Hotspot, "hotspot (4 active W-groups)"),
        (PatternSpec::WorstCase, "worst-case (Wi -> Wi+1)"),
    ] {
        println!("== {name} ==");
        for bench in [
            Bench::switchbased(&swp, RouteMode::Minimal),
            Bench::switchless(&slp, RouteMode::Minimal, VcScheme::Baseline),
            Bench::switchbased(&swp, RouteMode::Valiant),
            Bench::switchless(&slp, RouteMode::Valiant, VcScheme::Baseline),
        ] {
            let mode = if bench.label.contains("Mis") {
                "valiant"
            } else {
                "minimal"
            };
            let report = Session::bench(&bench).adaptive(&cfg, spec).unwrap().report;
            let knee = report.points.iter().rev().find(|p| !p.saturated);
            let p99 = knee.map(|p| p.p99).unwrap_or(f64::NAN);
            println!(
                "  {:<10} {:<8} saturation {:>5.2} flits/cycle/chip \
                 ({} sims, p99 at knee {:>6.1} cyc)",
                bench.label.replace("-Mis", ""),
                mode,
                report.sat_chip,
                report.points.len(),
                p99
            );
        }
        println!();
    }
    println!(
        "Minimal routing can only use the direct W-group-to-W-group links\n\
         (1/W of the global links under worst-case traffic); Valiant spreads\n\
         the load over a random intermediate W-group, trading path length\n\
         for an order of magnitude in throughput — with one extra VC."
    );
}
