//! Where does the switch-less Dragonfly actually bottleneck?
//!
//! Runs one W-group near saturation with per-channel statistics and
//! aggregates link utilization by channel class — the quantitative version
//! of the paper's Sec. III-B2 discussion ("the inter-C-group traffic will
//! compete with the intra-C-group traffic for the bandwidth provided by
//! the 2D-mesh").
//!
//! ```text
//! cargo run --release --example link_utilization
//! ```

use wsdf::routing::{RouteMode, VcScheme};
use wsdf::sim::{ChannelClass, SimConfig};
use wsdf::topo::SlParams;
use wsdf::{Bench, PatternSpec, Session};

fn main() {
    for width in [1u8, 2] {
        let p = SlParams::radix16().with_wgroups(1).with_mesh_width(width);
        let bench = Bench::switchless(&p, RouteMode::Minimal, VcScheme::Baseline);
        let cfg = SimConfig {
            per_channel_stats: true,
            ..Default::default()
        };
        // Just below the 1B saturation point of Fig. 10(c).
        let pattern = bench.pattern(PatternSpec::Uniform, 1.1 / bench.nodes_per_chip);
        let m = Session::bench(&bench)
            .sim(cfg)
            .metrics(pattern.as_ref())
            .expect("runs")
            .report;

        println!(
            "== mesh width {width} (\"{}\") @ 1.1 flits/cycle/chip uniform ==",
            if width == 1 { "1B" } else { "2B" }
        );
        // Aggregate by class: mean and peak utilization.
        let channels = &bench.fabric.net().channels;
        for class in ChannelClass::ALL {
            let mut count = 0u32;
            let mut sum = 0.0;
            let mut peak: f64 = 0.0;
            for (i, ch) in channels.iter().enumerate() {
                if ch.class != class {
                    continue;
                }
                let u = m.channel_utilization(i, ch.width).unwrap();
                count += 1;
                sum += u;
                peak = peak.max(u);
            }
            if count == 0 {
                continue;
            }
            println!(
                "  {:<12} {:>5} channels   mean {:>5.1}%   peak {:>5.1}%",
                class.name(),
                count,
                100.0 * sum / count as f64,
                100.0 * peak,
            );
        }
        println!();
    }
    println!(
        "With 1B links the mesh (short-reach) peak runs hottest — the\n\
         bisection bottleneck of Eq. (6). Doubling intra-C-group bandwidth\n\
         (2B) moves the hot spot out to the long-reach local links, which\n\
         is exactly why the paper's 2B curves keep scaling."
    );
}
