//! The cost case study (Table III + Fig. 9): what eliminating switches
//! buys at Slingshot scale, and whether the C-group actually fits on a
//! wafer.
//!
//! ```text
//! cargo run --release --example wafer_cost_study
//! ```

use wsdf::analysis::table3::{render, table_iii};
use wsdf::analysis::CGroupLayout;

fn main() {
    println!("{}", render(&table_iii()));

    let rows = table_iii();
    let slingshot = rows.iter().find(|r| r.name.contains("Slingshot")).unwrap();
    let switchless = rows
        .iter()
        .find(|r| r.name.contains("Switch-less"))
        .unwrap();
    println!(
        "At the same {} processors, the switch-less build removes all\n\
         {} switches, shrinks {} cabinets to {} and cuts inter-cabinet\n\
         cable length from {:.0}K·E to {:.0}K·E.\n",
        slingshot.processors,
        slingshot.switches,
        slingshot.cabinets,
        switchless.cabinets,
        slingshot.cable_length_e.unwrap() / 1000.0,
        switchless.cable_length_e.unwrap() / 1000.0,
    );

    let layout = CGroupLayout::paper();
    println!("{}", layout.summary());
    println!(
        "shoreline routable with one RDL layer: {}",
        layout.shoreline_feasible(1)
    );
    println!(
        "SR-LR conversion module bump budget ok: {}",
        layout.conv_module_feasible()
    );
}
