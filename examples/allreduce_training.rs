//! AI-training collective bandwidth: ring AllReduce on the switch-less
//! Dragonfly vs the switch-based baseline (the paper's Fig. 14 workload
//! and the HammingMesh motivation it cites).
//!
//! A data-parallel training step streams gradient segments around a ring.
//! On a switch, every chip owns exactly one injection link: 1 flit/cycle.
//! A wafer chip with four NoC nodes runs four parallel rings and can use
//! both ring directions — 2× and 4× the per-chip bandwidth.
//!
//! ```text
//! cargo run --release --example allreduce_training
//! ```

use wsdf::routing::{RouteMode, VcScheme};
use wsdf::topo::{SlParams, SwParams};
use wsdf::traffic::RingDirection;
use wsdf::{saturation_rate, Bench, PatternSpec, Session, SweepConfig, SweepPoint};

fn sweep(bench: &Bench, cfg: &SweepConfig, spec: PatternSpec, rates: &[f64]) -> Vec<SweepPoint> {
    Session::bench(bench)
        .sweep(cfg, spec, rates)
        .unwrap()
        .report
}

fn main() {
    let cfg = SweepConfig::default().scaled(0.5);
    let rates: Vec<f64> = (1..=11).map(|i| i as f64 * 0.4).collect();

    println!("Ring AllReduce saturation bandwidth (flits/cycle/chip)\n");
    println!("— within one C-group (16 chips on a switch vs 4 chips on a 4×4 mesh) —");
    for (dir, name) in [
        (RingDirection::Unidirectional, "unidirectional"),
        (RingDirection::Bidirectional, "bidirectional "),
    ] {
        let sw = Bench::single_switch(16);
        let sat_sw = saturation_rate(&sweep(&sw, &cfg, PatternSpec::RingCGroup(dir), &rates));
        let mesh = Bench::single_mesh(4, 2, 1);
        let sat_sl = saturation_rate(&sweep(&mesh, &cfg, PatternSpec::RingCGroup(dir), &rates));
        println!(
            "  {name}:  switch-based {sat_sw:.2}   switch-less {sat_sl:.2}   ({:.1}x)",
            sat_sl / sat_sw
        );
    }

    println!("\n— within one W-group (32 chips, 8 switches / 8 C-groups) —");
    let swp = SwParams::radix16().with_groups(1);
    let slp = SlParams::radix16().with_wgroups(1);
    let slp2 = slp.with_mesh_width(2);
    for (dir, name) in [
        (RingDirection::Unidirectional, "unidirectional"),
        (RingDirection::Bidirectional, "bidirectional "),
    ] {
        let sw = Bench::switchbased(&swp, RouteMode::Minimal);
        let sat_sw = saturation_rate(&sweep(&sw, &cfg, PatternSpec::RingWGroup(dir), &rates));
        let sl = Bench::switchless(&slp, RouteMode::Minimal, VcScheme::Baseline);
        let sat_sl = saturation_rate(&sweep(&sl, &cfg, PatternSpec::RingWGroup(dir), &rates));
        let sl2 = Bench::switchless(&slp2, RouteMode::Minimal, VcScheme::Baseline);
        let sat_sl2 = saturation_rate(&sweep(&sl2, &cfg, PatternSpec::RingWGroup(dir), &rates));
        println!(
            "  {name}:  switch-based {sat_sw:.2}   switch-less {sat_sl:.2}   switch-less-2B {sat_sl2:.2}"
        );
    }

    println!(
        "\nThroughput is bottleneck-chip throughput: a ring collective\n\
         advances at the pace of its slowest link, so that is the number a\n\
         training framework would observe."
    );
}
