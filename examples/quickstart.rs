//! Quickstart: build a switch-less Dragonfly W-group, let the adaptive
//! sweep find its saturation point, and read the numbers the paper cares
//! about — including tail latency.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wsdf::routing::{RouteMode, VcScheme};
use wsdf::topo::SlParams;
use wsdf::{AdaptiveConfig, Bench, PatternSpec, Session, TraceConfig};

fn main() {
    // The paper's radix-16-equivalent configuration, one W-group:
    // 8 C-groups of 4×4 on-chip routers, fully connected by long-reach
    // links; 32 chips, 128 network endpoints, zero switches.
    let params = SlParams::radix16().with_wgroups(1);
    let bench = Bench::switchless(&params, RouteMode::Minimal, VcScheme::Baseline);

    println!("fabric: {}", bench.label);
    println!("  routers:   {}", bench.fabric.net().num_routers());
    println!("  endpoints: {}", bench.endpoints());
    println!("  chips:     {}", bench.chips());
    println!("  VCs:       {}", bench.num_vcs());

    // No hand-tuned rate grid: the adaptive driver coarse-scans with
    // geometric steps, then bisects the saturation knee to within 2%.
    // Every point reports mean and p50/p95/p99 latency from the engine's
    // streaming histogram.
    // Streaming telemetry rides along: every probe's link utilization,
    // queue depths and per-class ejection latencies land in a JSONL
    // stream whose bytes are deterministic — same digest at any
    // partition or worker count.
    let cfg = AdaptiveConfig::default();
    let out = Session::bench(&bench)
        .trace(TraceConfig::default())
        .adaptive(&cfg, PatternSpec::Uniform)
        .expect("adaptive session failed");
    let report = out.report;
    let trace = out.trace.expect("telemetry was enabled");
    println!("\n{}", report.render(&bench.label));
    println!(
        "trace: {} JSONL records, digest {}",
        trace.jsonl.as_deref().map_or(0, |t| t.lines().count()),
        trace.digest.as_deref().unwrap_or("-")
    );
    println!(
        "saturation: {:.2} flits/cycle/chip ({} simulations, zero-load {:.1} cycles)",
        report.sat_chip,
        report.points.len(),
        report.zero_load_latency
    );

    println!(
        "\nA switch-based chip tops out at 1 flit/cycle/chip (one terminal\n\
         link); the C-group mesh keeps accepting well past that — the\n\
         paper's headline local-throughput result. Watch p99 pull away from\n\
         the mean as the offered load closes in on the knee."
    );
}
