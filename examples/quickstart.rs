//! Quickstart: build a switch-less Dragonfly W-group, push uniform traffic
//! through it, and read the numbers the paper cares about.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wsdf::routing::{RouteMode, VcScheme};
use wsdf::sim::SimConfig;
use wsdf::topo::SlParams;
use wsdf::{Bench, PatternSpec};

fn main() {
    // The paper's radix-16-equivalent configuration, one W-group:
    // 8 C-groups of 4×4 on-chip routers, fully connected by long-reach
    // links; 32 chips, 128 network endpoints, zero switches.
    let params = SlParams::radix16().with_wgroups(1);
    let bench = Bench::switchless(&params, RouteMode::Minimal, VcScheme::Baseline);

    println!("fabric: {}", bench.label);
    println!("  routers:   {}", bench.fabric.net().num_routers());
    println!("  endpoints: {}", bench.endpoints());
    println!("  chips:     {}", bench.chips());
    println!("  VCs:       {}", bench.num_vcs());

    // Offered load sweep in flits/cycle/chip (each chip has four on-chip
    // nodes, so 2.0/chip = 0.5 per network interface).
    let cfg = SimConfig::default();
    println!("\n  offered/chip   latency(cycles)   accepted/chip");
    for rate_chip in [0.4, 0.8, 1.2, 1.6, 2.0] {
        let pattern = bench.pattern(PatternSpec::Uniform, rate_chip / bench.nodes_per_chip);
        let m = bench.run(&cfg, pattern.as_ref()).expect("simulation runs");
        println!(
            "  {:>12.1} {:>17.1} {:>15.2}",
            rate_chip,
            m.avg_latency().unwrap_or(f64::NAN),
            m.accepted_rate() * bench.nodes_per_chip,
        );
    }

    println!(
        "\nA switch-based chip tops out at 1 flit/cycle/chip (one terminal\n\
         link); the C-group mesh keeps accepting well past that — the\n\
         paper's headline local-throughput result."
    );
}
